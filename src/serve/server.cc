#include "serve/server.hh"

// ramp-lint: guarded_by(conns_mu_): conns_
// ramp-lint: guarded_by(queue_mu_): queue_

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "fault/fault.hh"
#include "util/logging.hh"

namespace ramp {
namespace serve {

using util::ErrorCode;
using util::JsonValue;
using util::RampError;
using util::Result;

namespace {

/** Seconds between two steady-clock points. */
double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Best-effort id recovery from a payload that failed strict parsing,
 * so the error reply still correlates when the client got only one
 * field wrong. 0 when even that much is unrecoverable.
 */
std::uint64_t
bestEffortId(std::string_view payload)
{
    const auto doc = util::parseJson(payload, nullptr);
    if (!doc || !doc->isObject())
        return 0;
    const JsonValue *id = doc->find("id");
    if (!id || !id->isNumber() || id->number < 0.0)
        return 0;
    return static_cast<std::uint64_t>(id->number);
}

} // namespace

Server::Server(EvaluationService &service, ServerOptions opts)
    : service_(service), opts_(std::move(opts))
{
    if (opts_.queue_depth == 0)
        opts_.queue_depth = 1;
    if (opts_.batch_max == 0)
        opts_.batch_max = 1;
}

Server::~Server() { stop(); }

Result<void>
Server::start()
{
    if (started_.exchange(true))
        return RampError{ErrorCode::InvalidInput,
                         "server already started"};
    auto listener = util::listenTcp(opts_.port);
    if (!listener)
        return listener.error();
    listener_ = std::move(listener.value());
    port_ = listener_.port;
    acceptor_ = std::thread([this] { acceptLoop(); });
    batcher_ = std::thread([this] { batchLoop(); });
    return {};
}

void
Server::requestDrain()
{
    {
        std::lock_guard lock(queue_mu_);
        draining_.store(true, std::memory_order_release);
    }
    queue_cv_.notify_all();
}

void
Server::wait()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    std::lock_guard done(done_mu_);
    if (joined_)
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    if (batcher_.joinable())
        batcher_.join();
    // Everything admitted has been answered; now wake any reader
    // still parked on its socket and collect the threads.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard lock(conns_mu_);
        conns.swap(conns_);
    }
    for (auto &conn : conns) {
        conn->sock.shutdownBoth();
        if (conn->thread.joinable())
            conn->thread.join();
    }
    listener_.socket.close();
    joined_ = true;
}

void
Server::stop()
{
    requestDrain();
    wait();
}

void
Server::acceptLoop()
{
    while (!draining()) {
        auto accepted = util::acceptTcp(listener_.socket, 200);
        // Reap finished readers so a long-lived daemon's connection
        // table tracks live peers, not history.
        {
            std::lock_guard lock(conns_mu_);
            for (auto &conn : conns_) {
                if (conn->done.load(std::memory_order_acquire) &&
                    conn->thread.joinable())
                    conn->thread.join();
            }
            std::erase_if(conns_, [](const auto &conn) {
                return conn->done.load(std::memory_order_acquire) &&
                       !conn->thread.joinable();
            });
        }
        if (!accepted) {
            if (accepted.error().code == ErrorCode::Timeout)
                continue;
            util::warn(util::cat("serve: accept failed: ",
                                 accepted.error().message));
            break;
        }
        connections_.add();
        n_connections_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_shared<Connection>();
        conn->sock = std::move(accepted.value());
        {
            std::lock_guard lock(conns_mu_);
            conns_.push_back(conn);
        }
        conn->thread =
            std::thread([this, conn] { connectionLoop(conn); });
    }
}

void
Server::connectionLoop(const std::shared_ptr<Connection> &conn)
{
    std::uint64_t seq = 0;
    while (true) {
        auto frame = util::readFrame(conn->sock,
                                     opts_.max_frame_bytes,
                                     opts_.idle_timeout_ms);
        if (!frame) {
            if (frame.error().code == ErrorCode::InvalidInput) {
                // Oversized length prefix, or garbage bytes that
                // misparsed as one: tell the peer why, then hang up
                // (the stream is unframeable from here on).
                bad_requests_.add();
                n_bad_requests_.fetch_add(1,
                                          std::memory_order_relaxed);
                sendReply(conn, "",
                          encodeErrorReply(0, err_bad_request,
                                           frame.error().message));
            }
            break; // Timeout (idle peer) or IoFailure: just drop.
        }
        if (!frame.value().has_value())
            break; // Clean EOF at a frame boundary.
        replyInline(conn, *frame.value(), seq++);
    }
    conn->done.store(true, std::memory_order_release);
}

void
Server::replyInline(const std::shared_ptr<Connection> &conn,
                    const std::string &payload, std::uint64_t seq)
{
    const std::string fault_key =
        util::cat(payload, "#", seq);

    auto parsed = parseRequest(payload);
    if (!parsed) {
        bad_requests_.add();
        n_bad_requests_.fetch_add(1, std::memory_order_relaxed);
        sendReply(conn, fault_key,
                  encodeErrorReply(bestEffortId(payload),
                                   err_bad_request,
                                   parsed.error().message));
        return;
    }
    Request req = std::move(parsed.value());
    requests_.add();
    n_requests_.fetch_add(1, std::memory_order_relaxed);

    switch (req.type) {
      case RequestType::Stats: {
        JsonValue result = JsonValue::makeObject();
        result.set("server", statsJson());
        result.set("cache", service_.cacheStatsJson());
        sendReply(conn, fault_key,
                  encodeResultReply(req.id, std::move(result),
                                    req.version));
        return;
      }
      case RequestType::Shutdown: {
        requestDrain();
        JsonValue result = JsonValue::makeObject();
        result.set("draining", JsonValue::makeBool(true));
        sendReply(conn, fault_key,
                  encodeResultReply(req.id, std::move(result),
                                    req.version));
        return;
      }
      case RequestType::Hello: {
        // Capability negotiation never queues: the negotiated
        // version is min(client max, server max), and the reply
        // carries the server's whole range so older clients can
        // tell what they are talking to.
        hellos_.add();
        n_hellos_.fetch_add(1, std::memory_order_relaxed);
        JsonValue result = JsonValue::makeObject();
        result.set("v_min", JsonValue::makeNumber(
                                protocol_version_min));
        result.set("v_max", JsonValue::makeNumber(
                                protocol_version_max));
        result.set("negotiated_v",
                   JsonValue::makeNumber(std::min(
                       req.max_v, protocol_version_max)));
        sendReply(conn, fault_key,
                  encodeResultReply(req.id, std::move(result),
                                    req.version));
        return;
      }
      case RequestType::ReportUsage: {
        // Registry merge touches no evaluation state, so it is
        // answered inline from the reader thread.
        usage_reports_.add();
        n_usage_reports_.fetch_add(1, std::memory_order_relaxed);
        auto result = service_.reportUsage(req);
        sendReply(conn, fault_key,
                  result
                      ? encodeResultReply(req.id,
                                          std::move(result.value()),
                                          req.version)
                      : encodeErrorReply(
                            req.id,
                            util::errorCodeName(result.error().code),
                            result.error().message, req.version));
        return;
      }
      case RequestType::CacheAppend: {
        // Peer replication touches only the cache's own locks, so it
        // is answered inline from the reader thread -- a replication
        // stream never competes with clients for batcher slots.
        cache_appends_.add();
        n_cache_appends_.fetch_add(1, std::memory_order_relaxed);
        auto result = service_.cacheAppend(req);
        sendReply(conn, fault_key,
                  result
                      ? encodeResultReply(req.id,
                                          std::move(result.value()),
                                          req.version)
                      : encodeErrorReply(
                            req.id,
                            util::errorCodeName(result.error().code),
                            result.error().message, req.version));
        return;
      }
      case RequestType::Evaluate:
      case RequestType::SelectDrm:
      case RequestType::SelectDtm:
      case RequestType::SelectChip:
      case RequestType::RemainingLifetime:
        break;
    }

    // Admission control: the queue is bounded, and full or draining
    // means an immediate structured rejection, never a hang.
    {
        std::lock_guard lock(queue_mu_);
        if (draining_.load(std::memory_order_acquire)) {
            sendReply(conn, fault_key,
                      encodeErrorReply(req.id, err_shutting_down,
                                       "server is draining",
                                       req.version));
            return;
        }
        if (queue_.size() >= opts_.queue_depth) {
            rejected_.add();
            n_rejected_.fetch_add(1, std::memory_order_relaxed);
            sendReply(
                conn, fault_key,
                encodeErrorReply(
                    req.id, err_overloaded,
                    util::cat("admission queue is full (depth ",
                              opts_.queue_depth, ")"),
                    req.version));
            return;
        }
        queue_.push_back(Job{conn, std::move(req), fault_key,
                             std::chrono::steady_clock::now()});
        queue_depth_.set(static_cast<double>(queue_.size()));
    }
    queue_cv_.notify_one();
}

void
Server::batchLoop()
{
    service_.ensureReady();
    while (true) {
        std::vector<Job> batch;
        {
            std::unique_lock lock(queue_mu_);
            queue_cv_.wait(lock, [&] {
                return !queue_.empty() ||
                       draining_.load(std::memory_order_acquire);
            });
            if (queue_.empty())
                return; // Draining and fully drained.
            const std::size_t take =
                std::min(opts_.batch_max, queue_.size());
            batch.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            queue_depth_.set(static_cast<double>(queue_.size()));
        }
        runBatch(batch);
    }
}

void
Server::runBatch(std::vector<Job> &batch)
{
    const auto batch_t0 = std::chrono::steady_clock::now();

    // Single-flight: evaluate requests naming the same point share
    // one evaluation. Only one batch is ever in flight (one batcher),
    // so within-batch coalescing *is* global single-flight.
    using PointKey =
        std::tuple<std::string, drm::AdaptationSpace, std::size_t>;
    std::map<PointKey, std::vector<std::size_t>> point_jobs;
    std::vector<std::size_t> select_jobs;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Request &req = batch[i].req;
        if (req.type == RequestType::Evaluate)
            point_jobs[PointKey{req.app, req.space, req.config}]
                .push_back(i);
        else
            select_jobs.push_back(i);
    }

    std::vector<const PointKey *> unique_points;
    unique_points.reserve(point_jobs.size());
    std::size_t coalesced = 0;
    for (const auto &[key, jobs] : point_jobs) {
        unique_points.push_back(&key);
        coalesced += jobs.size() - 1;
    }
    if (coalesced) {
        coalesced_.add(coalesced);
        n_coalesced_.fetch_add(coalesced,
                               std::memory_order_relaxed);
    }

    // Result has no default state; seed the slots with a placeholder
    // the parallel loop always overwrites.
    std::vector<Result<core::OperatingPoint>> points(
        unique_points.size(),
        Result<core::OperatingPoint>(
            RampError{ErrorCode::InvalidInput, "unset"}));
    // Per-item errors land in points[i] as Results; the lambda
    // cannot throw RampException, so the report carries nothing.
    (void)service_.pool().parallelFor(
        unique_points.size(), [&](std::size_t i) {
            const auto &[app, space, config] = *unique_points[i];
            points[i] = service_.evaluatePoint(app, space, config);
        });

    std::map<PointKey, std::size_t> point_index;
    for (std::size_t i = 0; i < unique_points.size(); ++i)
        point_index.emplace(*unique_points[i], i);

    for (Job &job : batch) {
        const Request &req = job.req;
        Result<JsonValue> result =
            RampError{ErrorCode::InvalidInput, "unset"};
        if (req.type == RequestType::Evaluate) {
            const auto &point = points[point_index.at(
                PointKey{req.app, req.space, req.config})];
            result = point ? service_.encodeEvaluation(req,
                                                       point.value())
                           : Result<JsonValue>(point.error());
        } else if (req.type == RequestType::RemainingLifetime) {
            result = service_.remainingLifetime(req);
        } else if (req.type == RequestType::SelectChip) {
            result = service_.selectChip(req);
        } else {
            result = service_.select(req);
        }
        std::string reply =
            result ? encodeResultReply(req.id,
                                       std::move(result.value()),
                                       req.version)
                   : encodeErrorReply(
                         req.id,
                         util::errorCodeName(result.error().code),
                         result.error().message, req.version);
        sendReply(job.conn, job.fault_key, reply);
        request_s_.add(secondsSince(job.admitted));
    }

    batches_.add();
    n_batches_.fetch_add(1, std::memory_order_relaxed);
    batch_size_.add(static_cast<double>(batch.size()));
    batch_s_.add(secondsSince(batch_t0));
}

void
Server::sendReply(const std::shared_ptr<Connection> &conn,
                  std::string_view fault_key,
                  const std::string &payload)
{
    if (const fault::FaultPlan *plan = fault::activeFaultPlan();
        plan && !fault_key.empty()) {
        if (fault::dropConnection(*plan, fault_key)) {
            // Sever instead of replying: the client sees a torn
            // stream, exactly the failure its timeout path handles.
            conn->sock.shutdownBoth();
            return;
        }
        const double delay_ms = fault::slowReplyMs(*plan, fault_key);
        if (delay_ms > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay_ms));
    }
    std::lock_guard lock(conn->write_mu);
    auto written = util::writeFrame(conn->sock, payload,
                                    opts_.max_frame_bytes,
                                    opts_.io_timeout_ms);
    if (!written)
        conn->sock.shutdownBoth();
}

JsonValue
Server::statsJson() const
{
    const auto load = [](const std::atomic<std::uint64_t> &c) {
        return JsonValue::makeNumber(static_cast<double>(
            c.load(std::memory_order_relaxed)));
    };
    std::size_t depth = 0;
    {
        std::lock_guard lock(queue_mu_);
        depth = queue_.size();
    }
    JsonValue out = JsonValue::makeObject();
    out.set("requests", load(n_requests_));
    out.set("batches", load(n_batches_));
    out.set("rejected", load(n_rejected_));
    out.set("bad_requests", load(n_bad_requests_));
    out.set("coalesced", load(n_coalesced_));
    out.set("connections", load(n_connections_));
    out.set("hellos", load(n_hellos_));
    out.set("usage_reports", load(n_usage_reports_));
    out.set("cache_appends", load(n_cache_appends_));
    out.set("queue_depth",
            JsonValue::makeNumber(static_cast<double>(depth)));
    out.set("draining", JsonValue::makeBool(draining()));
    return out;
}

} // namespace serve
} // namespace ramp
