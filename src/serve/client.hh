/**
 * @file
 * Client library for the RAMP evaluation service.
 *
 * A Client owns one connection to a ramp_served daemon. The simple
 * surface is call(): send one request, wait for its reply. The
 * pipelined surface is send()/receive(): queue several requests and
 * collect replies as they complete (the server answers in completion
 * order, correlated by id) -- that is what bench_serve uses to keep N
 * requests in flight per connection.
 *
 * Error replies become RampErrors via replyErrorCode(), so a caller
 * distinguishes "overloaded" (back off and retry) from "shutting-
 * down" (go away) from evaluation failures (non-convergence and
 * friends travel the wire structurally).
 */

#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hh"
#include "util/net.hh"

namespace ramp {
namespace serve {

/** Connection knobs. */
struct ClientOptions
{
    std::uint16_t port = 0;    ///< ramp_served's port.
    int connect_timeout_ms = 2'000;
    /** Deadline for one send or one reply wait. Slow-connection
     *  fault tests shrink this to force the timeout path. */
    int io_timeout_ms = 30'000;
    std::size_t max_frame_bytes = default_max_frame;
};

/** One connection to the evaluation daemon. Move-only. */
class Client
{
  public:
    /** Connect to 127.0.0.1:opts.port. */
    static util::Result<Client> connect(ClientOptions opts);

    Client(Client &&) = default;
    Client &operator=(Client &&) = default;

    /**
     * Send @p req (its id is overwritten with a fresh one) and wait
     * for the matching reply. Transport failures (timeout, torn
     * stream) are RampErrors; an error *reply* is returned as a
     * Reply with ok == false, so callers see the server's code.
     */
    util::Result<Reply> call(Request req);

    /** Pipelining: send without waiting. Assigns and returns the
     *  request id the reply will echo. */
    util::Result<std::uint64_t> sendRequest(Request req);

    /** Pipelining: block for the next reply, whatever its id. */
    util::Result<Reply> receiveReply();

    /** call() an evaluate and unwrap the result object. */
    util::Result<util::JsonValue>
    evaluate(const std::string &app, drm::AdaptationSpace space,
             std::size_t config, double t_qual_k = 345.0);

    /** call() a select_drm and unwrap the result object. */
    util::Result<util::JsonValue>
    selectDrm(const std::string &app, drm::AdaptationSpace space,
              double t_qual_k = 345.0);

    /** call() a select_dtm and unwrap the result object. */
    util::Result<util::JsonValue>
    selectDtm(const std::string &app, drm::AdaptationSpace space,
              double t_design_k = 370.0, double t_qual_k = 345.0);

    /** call() a stats request and unwrap the result object. */
    util::Result<util::JsonValue> stats();

    /** Ask the server to begin its graceful drain. */
    util::Result<void> requestShutdown();

    /** Turn a Reply into value-or-error (error replies become
     *  RampErrors with replyErrorCode()). */
    static util::Result<util::JsonValue> unwrap(Reply reply);

  private:
    Client(util::Socket sock, ClientOptions opts)
        : sock_(std::move(sock)), opts_(opts)
    {
    }

    util::Socket sock_;
    ClientOptions opts_;
    std::uint64_t next_id_ = 1;
};

} // namespace serve
} // namespace ramp
