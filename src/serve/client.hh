/**
 * @file
 * Client library for the RAMP evaluation service.
 *
 * A Client owns one connection to a ramp_served daemon. The simple
 * surface is call(): send one request, wait for its reply. The
 * pipelined surface is send()/receive(): queue several requests and
 * collect replies as they complete (the server answers in completion
 * order, correlated by id) -- that is what bench_serve uses to keep N
 * requests in flight per connection.
 *
 * Error replies become RampErrors via replyErrorCode(), so a caller
 * distinguishes "overloaded" (back off and retry) from "shutting-
 * down" (go away) from evaluation failures (non-convergence and
 * friends travel the wire structurally).
 *
 * Client speaks the legacy v0 wire shape, unchanged. Session is the
 * versioned surface: open() negotiates the protocol version once
 * with a hello (falling back to v0 against a server that predates
 * hello), then every typed call is sent at the negotiated version.
 * The v2 fleet verbs -- reportUsage() and remainingLifetime() --
 * refuse locally with InvalidInput when the negotiated version is
 * too old, so a client never sends a frame the server will reject.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "util/net.hh"

namespace ramp {
namespace serve {

/** Connection knobs. */
struct ClientOptions
{
    std::uint16_t port = 0;    ///< ramp_served's port.
    int connect_timeout_ms = 2'000;
    /** Deadline for one send or one reply wait. Slow-connection
     *  fault tests shrink this to force the timeout path. */
    int io_timeout_ms = 30'000;
    std::size_t max_frame_bytes = default_max_frame;
};

/** One connection to the evaluation daemon. Move-only. */
class Client
{
  public:
    /** Connect to 127.0.0.1:opts.port. */
    [[nodiscard]] static util::Result<Client> connect(ClientOptions opts);

    Client(Client &&) = default;
    Client &operator=(Client &&) = default;

    /**
     * Send @p req (its id is overwritten with a fresh one) and wait
     * for the matching reply. Transport failures (timeout, torn
     * stream) are RampErrors; an error *reply* is returned as a
     * Reply with ok == false, so callers see the server's code.
     */
    [[nodiscard]] util::Result<Reply> call(Request req);

    /** Pipelining: send without waiting. Assigns and returns the
     *  request id the reply will echo. */
    [[nodiscard]] util::Result<std::uint64_t> sendRequest(Request req);

    /** Pipelining: block for the next reply, whatever its id. */
    [[nodiscard]] util::Result<Reply> receiveReply();

    /** call() an evaluate and unwrap the result object. */
    [[nodiscard]] util::Result<util::JsonValue>
    evaluate(const std::string &app, drm::AdaptationSpace space,
             std::size_t config, double t_qual_k = 345.0);

    /** call() a select_drm and unwrap the result object. */
    [[nodiscard]] util::Result<util::JsonValue>
    selectDrm(const std::string &app, drm::AdaptationSpace space,
              double t_qual_k = 345.0);

    /** call() a select_dtm and unwrap the result object. */
    [[nodiscard]] util::Result<util::JsonValue>
    selectDtm(const std::string &app, drm::AdaptationSpace space,
              double t_design_k = 370.0, double t_qual_k = 345.0);

    /** call() a stats request and unwrap the result object. */
    [[nodiscard]] util::Result<util::JsonValue> stats();

    /** Ask the server to begin its graceful drain. */
    [[nodiscard]] util::Result<void> requestShutdown();

    /** Turn a Reply into value-or-error (error replies become
     *  RampErrors with replyErrorCode()). */
    [[nodiscard]] static util::Result<util::JsonValue> unwrap(Reply reply);

  private:
    Client(util::Socket sock, ClientOptions opts)
        : sock_(std::move(sock)), opts_(opts)
    {
    }

    util::Socket sock_;
    ClientOptions opts_;
    std::uint64_t next_id_ = 1;
};

/**
 * A version-negotiated connection. Move-only; owns its Client.
 * Every typed call stamps the negotiated version on the request and
 * unwraps the reply, so callers work with result objects and
 * RampErrors, never raw frames.
 */
class Session
{
  public:
    /**
     * Connect and negotiate: send a v1 hello advertising
     * min(max_v, protocol_version_max). A server that rejects the
     * hello as a bad request is a pre-versioning v0 daemon; the
     * session degrades to version 0 instead of failing, so one
     * client binary works against any server generation. Transport
     * failures are returned as errors.
     */
    [[nodiscard]] static util::Result<Session>
    open(ClientOptions opts, int max_v = protocol_version_max);

    /** The negotiated protocol version (0 against a v0 server). */
    int version() const { return version_; }

    /** The underlying connection (pipelining; sendRequest callers
     *  must stamp Request::version themselves). */
    Client &client() { return client_; }

    /** evaluate at the negotiated version. */
    [[nodiscard]] util::Result<util::JsonValue>
    evaluate(const std::string &app, drm::AdaptationSpace space,
             std::size_t config, double t_qual_k = 345.0);

    /** select_drm at the negotiated version. */
    [[nodiscard]] util::Result<util::JsonValue>
    selectDrm(const std::string &app, drm::AdaptationSpace space,
              double t_qual_k = 345.0);

    /** select_dtm at the negotiated version. */
    [[nodiscard]] util::Result<util::JsonValue>
    selectDtm(const std::string &app, drm::AdaptationSpace space,
              double t_design_k = 370.0, double t_qual_k = 345.0);

    /** stats at the negotiated version. */
    [[nodiscard]] util::Result<util::JsonValue> stats();

    /** Ask the server to begin its graceful drain. */
    [[nodiscard]] util::Result<void> requestShutdown();

    /**
     * v2: merge an AgingState delta document into the server's
     * registry for @p chip. Returns the chip's post-merge summary.
     * InvalidInput when the negotiated version is below 2. A
     * non-zero @p seq makes the merge idempotent (the server skips
     * deltas whose seq it already applied), so a caller that retries
     * after a lost reply sends the same seq and cannot double-count.
     */
    [[nodiscard]] util::Result<util::JsonValue>
    reportUsage(const std::string &chip, util::JsonValue state,
                std::uint64_t seq = 0);

    /**
     * v2: the chip's consumed lifetime, banked slack, the
     * slack-banking selection for @p app over @p space, and the ETA
     * until the FIT budget is spent. InvalidInput below v2.
     */
    [[nodiscard]] util::Result<util::JsonValue> remainingLifetime(
        const std::string &chip, const std::string &app,
        drm::AdaptationSpace space, double t_qual_k = 345.0,
        drm::surrogate::SurrogateMode surrogate =
            drm::surrogate::SurrogateMode::Off);

    /**
     * v3: chip-level DRM selection for one application per core
     * under one chip-wide FIT budget (cmp::selectChipDrm). A
     * Null @p floorplan selects the built-in grid for apps.size()
     * cores; an object must be a valid cmp::ChipFloorplan document.
     * InvalidInput when the negotiated version is below 3.
     */
    [[nodiscard]] util::Result<util::JsonValue> selectChip(
        const std::vector<std::string> &apps,
        drm::AdaptationSpace space,
        cmp::BudgetPolicy policy = cmp::BudgetPolicy::Global,
        double t_qual_k = 345.0,
        util::JsonValue floorplan = util::JsonValue::makeNull());

  private:
    Session(Client client, int version)
        : client_(std::move(client)), version_(version)
    {
    }

    /** Guard for the v2-only verbs. */
    [[nodiscard]] util::Result<void> needVersion(int v, const char *verb) const;

    /** Stamp the negotiated version, call, unwrap. */
    [[nodiscard]] util::Result<util::JsonValue> callUnwrap(Request req);

    Client client_;
    int version_ = 0;
};

} // namespace serve
} // namespace ramp
