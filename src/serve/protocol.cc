#include "serve/protocol.hh"

#include <algorithm>
#include <cmath>

#include "cmp/floorplan.hh"
#include "util/logging.hh"

namespace ramp {
namespace serve {

using util::ErrorCode;
using util::JsonValue;
using util::RampError;
using util::Result;

namespace {

const char *const type_names[] = {
    "evaluate",    "select_drm",   "select_dtm",
    "stats",       "shutdown",     "hello",
    "report_usage", "remaining_lifetime", "cache_append",
    "select_chip",
};

// --- The per-version field table -------------------------------------
//
// Strict parsing (and the v0-compatible field order of the encoder)
// is declared here once per request type instead of re-implemented
// in per-type branches. Each rule names a field, whether the type
// requires it, the protocol version it arrived in, and whether the
// encoder may omit it at its default value.

enum class Field : std::uint8_t {
    App,
    Space,
    Config,
    TQualK,
    TDesignK,
    Surrogate,
    MaxV,
    Chip,
    State,
    Seq,
    Key,
    Record,
    Epoch,
    Apps,
    Policy,
    Floorplan,
};

struct FieldRule
{
    Field field;
    const char *name;
    bool required;
    int min_version;
    /** Encoder omits the field when it holds its default value
     *  (the optional surrogate mode). */
    bool omit_default = false;
};

struct TypeRule
{
    RequestType type;
    int min_version;
    const FieldRule *fields;
    std::size_t num_fields;
};

constexpr FieldRule evaluate_fields[] = {
    {Field::App, "app", true, 0},
    {Field::Space, "space", true, 0},
    {Field::Config, "config", true, 0},
    {Field::TQualK, "t_qual_k", false, 0},
};

constexpr FieldRule select_drm_fields[] = {
    {Field::App, "app", true, 0},
    {Field::Space, "space", true, 0},
    {Field::TQualK, "t_qual_k", false, 0},
    {Field::Surrogate, "surrogate", false, 0, true},
};

constexpr FieldRule select_dtm_fields[] = {
    {Field::App, "app", true, 0},
    {Field::Space, "space", true, 0},
    {Field::TDesignK, "t_design_k", false, 0},
    {Field::TQualK, "t_qual_k", false, 0},
    {Field::Surrogate, "surrogate", false, 0, true},
};

constexpr FieldRule hello_fields[] = {
    {Field::MaxV, "max_v", false, 1},
};

constexpr FieldRule report_usage_fields[] = {
    {Field::Chip, "chip", true, 2},
    {Field::State, "state", true, 2},
    {Field::Seq, "seq", false, 2, true},
};

constexpr FieldRule remaining_lifetime_fields[] = {
    {Field::Chip, "chip", true, 2},
    {Field::App, "app", true, 2},
    {Field::Space, "space", true, 2},
    {Field::TQualK, "t_qual_k", false, 2},
    {Field::Surrogate, "surrogate", false, 2, true},
};

constexpr FieldRule cache_append_fields[] = {
    {Field::Key, "key", true, 2},
    {Field::Record, "record", true, 2},
    {Field::Epoch, "epoch", true, 2},
};

constexpr FieldRule select_chip_fields[] = {
    {Field::Apps, "apps", true, 3},
    {Field::Space, "space", true, 3},
    {Field::Policy, "policy", false, 3},
    {Field::Floorplan, "floorplan", false, 3, true},
    {Field::TQualK, "t_qual_k", false, 3},
};

constexpr TypeRule type_rules[] = {
    {RequestType::Evaluate, 0, evaluate_fields,
     std::size(evaluate_fields)},
    {RequestType::SelectDrm, 0, select_drm_fields,
     std::size(select_drm_fields)},
    {RequestType::SelectDtm, 0, select_dtm_fields,
     std::size(select_dtm_fields)},
    {RequestType::Stats, 0, nullptr, 0},
    {RequestType::Shutdown, 0, nullptr, 0},
    {RequestType::Hello, 1, hello_fields, std::size(hello_fields)},
    {RequestType::ReportUsage, 2, report_usage_fields,
     std::size(report_usage_fields)},
    {RequestType::RemainingLifetime, 2, remaining_lifetime_fields,
     std::size(remaining_lifetime_fields)},
    {RequestType::CacheAppend, 2, cache_append_fields,
     std::size(cache_append_fields)},
    {RequestType::SelectChip, 3, select_chip_fields,
     std::size(select_chip_fields)},
};

const TypeRule &
ruleFor(RequestType t)
{
    return type_rules[static_cast<std::size_t>(t)];
}

/** The rule for @p name within the type, or nullptr (foreign). */
const FieldRule *
findField(const TypeRule &rule, std::string_view name)
{
    for (std::size_t i = 0; i < rule.num_fields; ++i)
        if (name == rule.fields[i].name)
            return &rule.fields[i];
    return nullptr;
}

/** Non-negative integer member (ids, config indexes, versions). */
Result<std::uint64_t>
nonNegativeInt(const JsonValue &v)
{
    if (!v.isNumber() || v.number < 0.0 ||
        v.number != std::floor(v.number))
        return RampError{ErrorCode::InvalidInput, "not an integer"};
    return static_cast<std::uint64_t>(v.number);
}

/** Parse one table field's value into the request. */
Result<void>
parseField(const FieldRule &rule, const JsonValue &value,
           Request &req)
{
    switch (rule.field) {
      case Field::App:
        if (!value.isString() || value.str.empty())
            return RampError{ErrorCode::InvalidInput,
                             "request needs a non-empty string "
                             "'app'"};
        req.app = value.str;
        return {};
      case Field::Space: {
        if (!value.isString())
            return RampError{ErrorCode::InvalidInput,
                             "request needs a string 'space'"};
        const auto s = drm::adaptationSpaceFromName(value.str);
        if (!s)
            return RampError{ErrorCode::InvalidInput,
                             util::cat("unknown adaptation space '",
                                       value.str, "'")};
        req.space = *s;
        return {};
      }
      case Field::Config: {
        auto cfg = nonNegativeInt(value);
        if (!cfg)
            return RampError{ErrorCode::InvalidInput,
                             util::cat(requestTypeName(req.type),
                                       " needs a non-negative "
                                       "integer 'config'")};
        req.config = static_cast<std::size_t>(cfg.value());
        return {};
      }
      case Field::TQualK: {
        if (!value.isNumber() || !std::isfinite(value.number))
            return RampError{ErrorCode::InvalidInput,
                             "request field 't_qual_k' must be a "
                             "finite number"};
        req.t_qual_k = value.number;
        return {};
      }
      case Field::TDesignK: {
        if (!value.isNumber() || !std::isfinite(value.number))
            return RampError{ErrorCode::InvalidInput,
                             "request field 't_design_k' must be a "
                             "finite number"};
        req.t_design_k = value.number;
        return {};
      }
      case Field::Surrogate: {
        if (!value.isString())
            return RampError{ErrorCode::InvalidInput,
                             "request field 'surrogate' must be a "
                             "string"};
        const auto parsed =
            drm::surrogate::surrogateModeFromName(value.str);
        if (!parsed)
            return RampError{
                ErrorCode::InvalidInput,
                util::cat("unknown surrogate mode '", value.str,
                          "' (off, rank, or auto)")};
        req.surrogate = *parsed;
        return {};
      }
      case Field::MaxV: {
        auto v = nonNegativeInt(value);
        if (!v)
            return RampError{ErrorCode::InvalidInput,
                             "hello needs a non-negative integer "
                             "'max_v'"};
        req.max_v = static_cast<int>(
            std::min<std::uint64_t>(v.value(), 1'000'000));
        return {};
      }
      case Field::Chip:
        if (!value.isString() || value.str.empty())
            return RampError{ErrorCode::InvalidInput,
                             "request needs a non-empty string "
                             "'chip'"};
        req.chip = value.str;
        return {};
      case Field::State:
        if (!value.isObject())
            return RampError{ErrorCode::InvalidInput,
                             "report_usage needs an object "
                             "'state'"};
        req.state = value;
        return {};
      case Field::Seq: {
        auto s = nonNegativeInt(value);
        if (!s)
            return RampError{ErrorCode::InvalidInput,
                             "request field 'seq' must be a "
                             "non-negative integer"};
        req.seq = s.value();
        return {};
      }
      case Field::Key:
        if (!value.isString() || value.str.empty())
            return RampError{ErrorCode::InvalidInput,
                             "cache_append needs a non-empty string "
                             "'key'"};
        req.key = value.str;
        return {};
      case Field::Record:
        if (!value.isString() || value.str.empty())
            return RampError{ErrorCode::InvalidInput,
                             "cache_append needs a non-empty string "
                             "'record'"};
        req.record = value.str;
        return {};
      case Field::Epoch: {
        auto e = nonNegativeInt(value);
        if (!e)
            return RampError{ErrorCode::InvalidInput,
                             "cache_append needs a non-negative "
                             "integer 'epoch'"};
        req.epoch = e.value();
        return {};
      }
      case Field::Apps: {
        if (!value.isArray() || value.array.empty())
            return RampError{ErrorCode::InvalidInput,
                             "select_chip needs a non-empty array "
                             "'apps' (one application per core)"};
        req.core_apps.clear();
        for (std::size_t i = 0; i < value.array.size(); ++i) {
            const JsonValue &name = value.array[i];
            if (!name.isString() || name.str.empty())
                return RampError{
                    ErrorCode::InvalidInput,
                    util::cat("select_chip 'apps[", i,
                              "]' must be a non-empty string")};
            req.core_apps.push_back(name.str);
        }
        return {};
      }
      case Field::Policy: {
        if (!value.isString())
            return RampError{ErrorCode::InvalidInput,
                             "request field 'policy' must be a "
                             "string"};
        const auto p = cmp::budgetPolicyFromName(value.str);
        if (!p)
            return RampError{
                ErrorCode::InvalidInput,
                util::cat("unknown budget policy '", value.str,
                          "' (per-core or global)")};
        req.budget_policy = *p;
        return {};
      }
      case Field::Floorplan: {
        // Validate the placement document here so a malformed
        // floorplan is a structured bad-request naming the offending
        // core ("request:cores[2]: ..."), not a later evaluation
        // failure.
        if (!value.isObject())
            return RampError{ErrorCode::InvalidInput,
                             "select_chip needs an object "
                             "'floorplan'"};
        auto plan = cmp::ChipFloorplan::tryParse(value, "request");
        if (!plan)
            return plan.error();
        req.floorplan = value;
        return {};
      }
    }
    util::panic("parseField: bad field id");
}

/** Append one table field's value to the wire object. */
void
encodeField(const FieldRule &rule, const Request &req,
            JsonValue &root)
{
    switch (rule.field) {
      case Field::App:
        root.set("app", JsonValue::makeString(req.app));
        return;
      case Field::Space:
        root.set("space", JsonValue::makeString(
                              drm::adaptationSpaceName(req.space)));
        return;
      case Field::Config:
        root.set("config", JsonValue::makeNumber(
                               static_cast<double>(req.config)));
        return;
      case Field::TQualK:
        root.set("t_qual_k", JsonValue::makeNumber(req.t_qual_k));
        return;
      case Field::TDesignK:
        root.set("t_design_k",
                 JsonValue::makeNumber(req.t_design_k));
        return;
      case Field::Surrogate:
        if (req.surrogate != drm::surrogate::SurrogateMode::Off)
            root.set("surrogate",
                     JsonValue::makeString(
                         drm::surrogate::surrogateModeName(
                             req.surrogate)));
        return;
      case Field::MaxV:
        root.set("max_v", JsonValue::makeNumber(
                              static_cast<double>(req.max_v)));
        return;
      case Field::Chip:
        root.set("chip", JsonValue::makeString(req.chip));
        return;
      case Field::State:
        root.set("state", req.state);
        return;
      case Field::Seq:
        if (req.seq != 0)
            root.set("seq", JsonValue::makeNumber(
                                static_cast<double>(req.seq)));
        return;
      case Field::Key:
        root.set("key", JsonValue::makeString(req.key));
        return;
      case Field::Record:
        root.set("record", JsonValue::makeString(req.record));
        return;
      case Field::Epoch:
        root.set("epoch", JsonValue::makeNumber(
                              static_cast<double>(req.epoch)));
        return;
      case Field::Apps: {
        JsonValue apps = JsonValue::makeArray();
        for (const auto &name : req.core_apps)
            apps.push(JsonValue::makeString(name));
        root.set("apps", std::move(apps));
        return;
      }
      case Field::Policy:
        root.set("policy",
                 JsonValue::makeString(
                     cmp::budgetPolicyName(req.budget_policy)));
        return;
      case Field::Floorplan:
        if (req.floorplan.isObject())
            root.set("floorplan", req.floorplan);
        return;
    }
    util::panic("encodeField: bad field id");
}

/** "id" (and, on versioned frames, "v") shared by both reply
 *  encoders. */
JsonValue
replyHead(std::uint64_t id, int version)
{
    JsonValue root = JsonValue::makeObject();
    root.set("id",
             JsonValue::makeNumber(static_cast<double>(id)));
    if (version > 0)
        root.set("v", JsonValue::makeNumber(
                          static_cast<double>(version)));
    return root;
}

} // namespace

const char *
requestTypeName(RequestType t)
{
    return type_names[static_cast<std::size_t>(t)];
}

std::optional<RequestType>
requestTypeFromName(std::string_view name)
{
    for (std::size_t i = 0; i < std::size(type_names); ++i)
        if (name == type_names[i])
            return static_cast<RequestType>(i);
    return std::nullopt;
}

int
requestTypeMinVersion(RequestType t)
{
    return ruleFor(t).min_version;
}

std::string
encodeRequest(const Request &req)
{
    JsonValue root = JsonValue::makeObject();
    root.set("id", JsonValue::makeNumber(
                       static_cast<double>(req.id)));
    if (req.version > 0)
        root.set("v", JsonValue::makeNumber(
                          static_cast<double>(req.version)));
    root.set("type",
             JsonValue::makeString(requestTypeName(req.type)));
    const TypeRule &rule = ruleFor(req.type);
    for (std::size_t i = 0; i < rule.num_fields; ++i)
        if (rule.fields[i].min_version <= req.version)
            encodeField(rule.fields[i], req, root);
    return util::writeJson(root);
}

Result<Request>
parseRequest(std::string_view payload)
{
    std::string err;
    const auto doc = util::parseJson(payload, &err);
    if (!doc)
        return RampError{ErrorCode::InvalidInput,
                         util::cat("request is not JSON: ", err)};
    if (!doc->isObject())
        return RampError{ErrorCode::InvalidInput,
                         "request must be a JSON object"};

    Request req;

    const JsonValue *id = doc->find("id");
    if (!id || !id->isNumber() || id->number < 0.0 ||
        id->number != std::floor(id->number))
        return RampError{ErrorCode::InvalidInput,
                         "request needs a non-negative integer "
                         "'id'"};
    req.id = static_cast<std::uint64_t>(id->number);

    if (const JsonValue *v = doc->find("v")) {
        auto ver = nonNegativeInt(*v);
        if (!ver)
            return RampError{ErrorCode::InvalidInput,
                             "request field 'v' must be a "
                             "non-negative integer"};
        if (ver.value() > protocol_version_max)
            return RampError{
                ErrorCode::InvalidInput,
                util::cat("protocol version ", ver.value(),
                          " is newer than this server speaks (max ",
                          protocol_version_max,
                          "); send a hello to negotiate")};
        req.version = static_cast<int>(ver.value());
    }

    const JsonValue *type = doc->find("type");
    if (!type || !type->isString())
        return RampError{ErrorCode::InvalidInput,
                         "request needs a string 'type'"};
    const auto t = requestTypeFromName(type->str);
    if (!t)
        return RampError{ErrorCode::InvalidInput,
                         util::cat("unknown request type '",
                                   type->str, "'")};
    req.type = *t;

    const TypeRule &rule = ruleFor(req.type);
    if (rule.min_version > req.version)
        return RampError{
            ErrorCode::InvalidInput,
            util::cat("request type '", requestTypeName(req.type),
                      "' needs protocol v", rule.min_version,
                      " or newer (frame is v", req.version, ")")};

    // Reject fields that don't apply to the type (a client that
    // sends "config" on a select_drm believed it would be honoured)
    // or that are newer than the frame's declared version.
    for (const auto &[key, value] : doc->object) {
        (void)value;
        if (key == "id" || key == "type" || key == "v")
            continue;
        const FieldRule *f = findField(rule, key);
        if (!f)
            return RampError{
                ErrorCode::InvalidInput,
                util::cat("field '", key, "' does not apply to a ",
                          requestTypeName(req.type), " request")};
        if (f->min_version > req.version)
            return RampError{
                ErrorCode::InvalidInput,
                util::cat("field '", key, "' needs protocol v",
                          f->min_version, " or newer (frame is v",
                          req.version, ")")};
    }

    for (std::size_t i = 0; i < rule.num_fields; ++i) {
        const FieldRule &f = rule.fields[i];
        const JsonValue *value = doc->find(f.name);
        if (!value) {
            if (f.required)
                return RampError{
                    ErrorCode::InvalidInput,
                    util::cat(requestTypeName(req.type),
                              " needs required field '", f.name,
                              "'")};
            continue;
        }
        auto parsed = parseField(f, *value, req);
        if (!parsed)
            return parsed.error();
    }
    return req;
}

std::string
encodeResultReply(std::uint64_t id, JsonValue result, int version)
{
    JsonValue root = replyHead(id, version);
    root.set("ok", JsonValue::makeBool(true));
    root.set("result", std::move(result));
    return util::writeJson(root);
}

std::string
encodeErrorReply(std::uint64_t id, std::string_view code,
                 std::string_view message, int version)
{
    JsonValue error = JsonValue::makeObject();
    error.set("code", JsonValue::makeString(std::string(code)));
    error.set("message",
              JsonValue::makeString(std::string(message)));
    JsonValue root = replyHead(id, version);
    root.set("ok", JsonValue::makeBool(false));
    root.set("error", std::move(error));
    return util::writeJson(root);
}

Result<Reply>
parseReply(std::string_view payload)
{
    std::string err;
    const auto doc = util::parseJson(payload, &err);
    if (!doc || !doc->isObject())
        return RampError{ErrorCode::InvalidInput,
                         util::cat("reply is not a JSON object: ",
                                   err)};
    Reply reply;
    const JsonValue *id = doc->find("id");
    const JsonValue *ok = doc->find("ok");
    if (!id || !id->isNumber() || !ok || !ok->isBool())
        return RampError{ErrorCode::InvalidInput,
                         "reply needs numeric 'id' and boolean "
                         "'ok'"};
    reply.id = static_cast<std::uint64_t>(id->number);
    reply.ok = ok->boolean;
    if (const JsonValue *v = doc->find("v")) {
        auto ver = nonNegativeInt(*v);
        if (!ver)
            return RampError{ErrorCode::InvalidInput,
                             "reply field 'v' must be a "
                             "non-negative integer"};
        reply.version = static_cast<int>(
            std::min<std::uint64_t>(ver.value(), 1'000'000));
    }
    if (reply.ok) {
        const JsonValue *result = doc->find("result");
        if (!result)
            return RampError{ErrorCode::InvalidInput,
                             "ok reply is missing 'result'"};
        reply.result = *result;
    } else {
        const JsonValue *error = doc->find("error");
        if (!error || !error->isObject())
            return RampError{ErrorCode::InvalidInput,
                             "error reply is missing 'error'"};
        const JsonValue *code = error->find("code");
        const JsonValue *message = error->find("message");
        if (!code || !code->isString() || !message ||
            !message->isString())
            return RampError{ErrorCode::InvalidInput,
                             "error reply needs string "
                             "'code'/'message'"};
        reply.error_code = code->str;
        reply.error_message = message->str;
    }
    return reply;
}

util::ErrorCode
replyErrorCode(std::string_view code)
{
    if (code == err_overloaded)
        return ErrorCode::Overloaded;
    if (code == err_shutting_down)
        return ErrorCode::Unavailable;
    if (code == err_no_backend)
        return ErrorCode::Unavailable;
    for (ErrorCode c :
         {ErrorCode::SingularSystem, ErrorCode::NonFiniteValue,
          ErrorCode::NonConvergence, ErrorCode::InvalidInput,
          ErrorCode::CorruptRecord, ErrorCode::IoFailure,
          ErrorCode::LockContention, ErrorCode::Timeout,
          ErrorCode::Overloaded, ErrorCode::Unavailable})
        if (code == util::errorCodeName(c))
            return c;
    return ErrorCode::InvalidInput;
}

} // namespace serve
} // namespace ramp
