#include "serve/protocol.hh"

#include <cmath>

#include "util/logging.hh"

namespace ramp {
namespace serve {

using util::ErrorCode;
using util::JsonValue;
using util::RampError;
using util::Result;

namespace {

const char *const type_names[] = {
    "evaluate", "select_drm", "select_dtm", "stats", "shutdown",
};

/** Fetch a finite number field, with a default when absent. */
Result<double>
numberField(const JsonValue &obj, std::string_view key,
            double fallback)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    if (!v->isNumber() || !std::isfinite(v->number))
        return RampError{ErrorCode::InvalidInput,
                         util::cat("request field '", std::string(key),
                                   "' must be a finite number")};
    return v->number;
}

} // namespace

const char *
requestTypeName(RequestType t)
{
    return type_names[static_cast<std::size_t>(t)];
}

std::optional<RequestType>
requestTypeFromName(std::string_view name)
{
    for (std::size_t i = 0; i < std::size(type_names); ++i)
        if (name == type_names[i])
            return static_cast<RequestType>(i);
    return std::nullopt;
}

std::string
encodeRequest(const Request &req)
{
    JsonValue root = JsonValue::makeObject();
    root.set("id", JsonValue::makeNumber(
                       static_cast<double>(req.id)));
    root.set("type",
             JsonValue::makeString(requestTypeName(req.type)));
    switch (req.type) {
      case RequestType::Evaluate:
        root.set("app", JsonValue::makeString(req.app));
        root.set("space", JsonValue::makeString(
                              drm::adaptationSpaceName(req.space)));
        root.set("config", JsonValue::makeNumber(
                               static_cast<double>(req.config)));
        root.set("t_qual_k", JsonValue::makeNumber(req.t_qual_k));
        break;
      case RequestType::SelectDrm:
        root.set("app", JsonValue::makeString(req.app));
        root.set("space", JsonValue::makeString(
                              drm::adaptationSpaceName(req.space)));
        root.set("t_qual_k", JsonValue::makeNumber(req.t_qual_k));
        if (req.surrogate != drm::surrogate::SurrogateMode::Off)
            root.set("surrogate",
                     JsonValue::makeString(
                         drm::surrogate::surrogateModeName(
                             req.surrogate)));
        break;
      case RequestType::SelectDtm:
        root.set("app", JsonValue::makeString(req.app));
        root.set("space", JsonValue::makeString(
                              drm::adaptationSpaceName(req.space)));
        root.set("t_design_k",
                 JsonValue::makeNumber(req.t_design_k));
        root.set("t_qual_k", JsonValue::makeNumber(req.t_qual_k));
        if (req.surrogate != drm::surrogate::SurrogateMode::Off)
            root.set("surrogate",
                     JsonValue::makeString(
                         drm::surrogate::surrogateModeName(
                             req.surrogate)));
        break;
      case RequestType::Stats:
      case RequestType::Shutdown:
        break;
    }
    return util::writeJson(root);
}

Result<Request>
parseRequest(std::string_view payload)
{
    std::string err;
    const auto doc = util::parseJson(payload, &err);
    if (!doc)
        return RampError{ErrorCode::InvalidInput,
                         util::cat("request is not JSON: ", err)};
    if (!doc->isObject())
        return RampError{ErrorCode::InvalidInput,
                         "request must be a JSON object"};

    Request req;

    const JsonValue *id = doc->find("id");
    if (!id || !id->isNumber() || id->number < 0.0 ||
        id->number != std::floor(id->number))
        return RampError{ErrorCode::InvalidInput,
                         "request needs a non-negative integer "
                         "'id'"};
    req.id = static_cast<std::uint64_t>(id->number);

    const JsonValue *type = doc->find("type");
    if (!type || !type->isString())
        return RampError{ErrorCode::InvalidInput,
                         "request needs a string 'type'"};
    const auto t = requestTypeFromName(type->str);
    if (!t)
        return RampError{ErrorCode::InvalidInput,
                         util::cat("unknown request type '",
                                   type->str, "'")};
    req.type = *t;

    const bool needs_app = req.type == RequestType::Evaluate ||
                           req.type == RequestType::SelectDrm ||
                           req.type == RequestType::SelectDtm;

    // Reject fields that don't apply to the type: a client that
    // sends "config" on a select_drm believed it would be honoured.
    for (const auto &[key, value] : doc->object) {
        (void)value;
        if (key == "id" || key == "type")
            continue;
        const bool is_select = req.type == RequestType::SelectDrm ||
                               req.type == RequestType::SelectDtm;
        const bool known =
            (needs_app && (key == "app" || key == "space" ||
                           key == "t_qual_k")) ||
            (req.type == RequestType::Evaluate && key == "config") ||
            (req.type == RequestType::SelectDtm &&
             key == "t_design_k") ||
            (is_select && key == "surrogate");
        if (!known)
            return RampError{
                ErrorCode::InvalidInput,
                util::cat("field '", key, "' does not apply to a ",
                          requestTypeName(req.type), " request")};
    }

    if (!needs_app)
        return req;

    const JsonValue *app = doc->find("app");
    if (!app || !app->isString() || app->str.empty())
        return RampError{ErrorCode::InvalidInput,
                         "request needs a non-empty string 'app'"};
    req.app = app->str;

    const JsonValue *space = doc->find("space");
    if (!space || !space->isString())
        return RampError{ErrorCode::InvalidInput,
                         "request needs a string 'space'"};
    const auto s = drm::adaptationSpaceFromName(space->str);
    if (!s)
        return RampError{ErrorCode::InvalidInput,
                         util::cat("unknown adaptation space '",
                                   space->str, "'")};
    req.space = *s;

    auto t_qual = numberField(*doc, "t_qual_k", req.t_qual_k);
    if (!t_qual)
        return t_qual.error();
    req.t_qual_k = t_qual.value();

    if (req.type == RequestType::Evaluate) {
        const JsonValue *cfg = doc->find("config");
        if (!cfg || !cfg->isNumber() || cfg->number < 0.0 ||
            cfg->number != std::floor(cfg->number))
            return RampError{ErrorCode::InvalidInput,
                             "evaluate needs a non-negative integer "
                             "'config'"};
        req.config = static_cast<std::size_t>(cfg->number);
    }
    if (req.type == RequestType::SelectDtm) {
        auto t_design =
            numberField(*doc, "t_design_k", req.t_design_k);
        if (!t_design)
            return t_design.error();
        req.t_design_k = t_design.value();
    }
    if (req.type == RequestType::SelectDrm ||
        req.type == RequestType::SelectDtm) {
        if (const JsonValue *mode = doc->find("surrogate")) {
            if (!mode->isString())
                return RampError{ErrorCode::InvalidInput,
                                 "request field 'surrogate' must be "
                                 "a string"};
            const auto parsed =
                drm::surrogate::surrogateModeFromName(mode->str);
            if (!parsed)
                return RampError{
                    ErrorCode::InvalidInput,
                    util::cat("unknown surrogate mode '", mode->str,
                              "' (off, rank, or auto)")};
            req.surrogate = *parsed;
        }
    }
    return req;
}

std::string
encodeResultReply(std::uint64_t id, JsonValue result)
{
    JsonValue root = JsonValue::makeObject();
    root.set("id",
             JsonValue::makeNumber(static_cast<double>(id)));
    root.set("ok", JsonValue::makeBool(true));
    root.set("result", std::move(result));
    return util::writeJson(root);
}

std::string
encodeErrorReply(std::uint64_t id, std::string_view code,
                 std::string_view message)
{
    JsonValue error = JsonValue::makeObject();
    error.set("code", JsonValue::makeString(std::string(code)));
    error.set("message",
              JsonValue::makeString(std::string(message)));
    JsonValue root = JsonValue::makeObject();
    root.set("id",
             JsonValue::makeNumber(static_cast<double>(id)));
    root.set("ok", JsonValue::makeBool(false));
    root.set("error", std::move(error));
    return util::writeJson(root);
}

Result<Reply>
parseReply(std::string_view payload)
{
    std::string err;
    const auto doc = util::parseJson(payload, &err);
    if (!doc || !doc->isObject())
        return RampError{ErrorCode::InvalidInput,
                         util::cat("reply is not a JSON object: ",
                                   err)};
    Reply reply;
    const JsonValue *id = doc->find("id");
    const JsonValue *ok = doc->find("ok");
    if (!id || !id->isNumber() || !ok || !ok->isBool())
        return RampError{ErrorCode::InvalidInput,
                         "reply needs numeric 'id' and boolean "
                         "'ok'"};
    reply.id = static_cast<std::uint64_t>(id->number);
    reply.ok = ok->boolean;
    if (reply.ok) {
        const JsonValue *result = doc->find("result");
        if (!result)
            return RampError{ErrorCode::InvalidInput,
                             "ok reply is missing 'result'"};
        reply.result = *result;
    } else {
        const JsonValue *error = doc->find("error");
        if (!error || !error->isObject())
            return RampError{ErrorCode::InvalidInput,
                             "error reply is missing 'error'"};
        const JsonValue *code = error->find("code");
        const JsonValue *message = error->find("message");
        if (!code || !code->isString() || !message ||
            !message->isString())
            return RampError{ErrorCode::InvalidInput,
                             "error reply needs string "
                             "'code'/'message'"};
        reply.error_code = code->str;
        reply.error_message = message->str;
    }
    return reply;
}

util::ErrorCode
replyErrorCode(std::string_view code)
{
    if (code == err_overloaded)
        return ErrorCode::Overloaded;
    if (code == err_shutting_down)
        return ErrorCode::Unavailable;
    for (ErrorCode c :
         {ErrorCode::SingularSystem, ErrorCode::NonFiniteValue,
          ErrorCode::NonConvergence, ErrorCode::InvalidInput,
          ErrorCode::CorruptRecord, ErrorCode::IoFailure,
          ErrorCode::LockContention, ErrorCode::Timeout,
          ErrorCode::Overloaded, ErrorCode::Unavailable})
        if (code == util::errorCodeName(c))
            return c;
    return ErrorCode::InvalidInput;
}

} // namespace serve
} // namespace ramp
