/**
 * @file
 * The RAMP evaluation daemon. Listens on loopback, serves the
 * protocol of serve/protocol.hh, and drains gracefully on SIGTERM /
 * SIGINT or a client shutdown request: admitted work is answered,
 * new work is rejected with "shutting-down", then the process exits.
 *
 * The bound port is printed to stdout (and optionally a --port-file)
 * so scripts can use an ephemeral port without racing the daemon.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "fault/fault.hh"
#include "serve/server.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

void
usage(const char *prog, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "  --port N            listen port (default 0 = ephemeral)\n"
        "  --port-file PATH    write the bound port to PATH\n"
        "  --cache PATH        evaluation cache file (wins over\n"
        "                      RAMP_EVAL_CACHE; default\n"
        "                      ramp_eval_cache.txt)\n"
        "  --threads N         evaluation pool concurrency\n"
        "  --apps N            serve only the first N suite apps\n"
        "  --queue-depth N     admission queue bound (default 64)\n"
        "  --batch-max N       max requests per batch (default 16)\n"
        "  --idle-timeout-ms N disconnect idle peers (default "
        "30000)\n"
        "  --aging-state PATH  per-chip aging registry: loaded at\n"
        "                      start (corrupt files quarantined),\n"
        "                      saved at drain\n"
        "  --metrics PATH      telemetry snapshot at exit\n"
        "  --fault-plan P      fault plan (inline JSON or file)\n"
        "  --fault-seed N      override the plan's seed\n"
        "  --help              show this message and exit\n",
        prog);
}

[[noreturn]] void
badFlag(const char *prog, const std::string &why)
{
    usage(prog, stderr);
    ramp::util::fatal(why);
}

std::uint64_t
parseCount(const char *prog, const std::string &flag,
           const std::string &value)
{
    char *end = nullptr;
    const unsigned long long n =
        std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0')
        badFlag(prog, ramp::util::cat(flag,
                                      " needs an integer, got '",
                                      value, "'"));
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ramp;

    serve::ServiceOptions service_opts;
    if (const char *env = std::getenv("RAMP_EVAL_CACHE"))
        service_opts.cache_path = env;
    else
        service_opts.cache_path = "ramp_eval_cache.txt";
    serve::ServerOptions server_opts;
    std::string port_file;
    std::string aging_state_path;
    std::string metrics_path;
    std::string fault_plan;
    std::uint64_t fault_seed = 0;

    const char *prog = argc > 0 ? argv[0] : "ramp_served";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(prog, stdout);
            return 0;
        }
        if (i + 1 >= argc)
            badFlag(prog, util::cat(arg, " needs a value"));
        const std::string value = argv[++i];
        if (arg == "--port")
            server_opts.port = static_cast<std::uint16_t>(
                parseCount(prog, arg, value));
        else if (arg == "--port-file")
            port_file = value;
        else if (arg == "--cache")
            service_opts.cache_path = value;
        else if (arg == "--threads")
            service_opts.threads = static_cast<unsigned>(
                parseCount(prog, arg, value));
        else if (arg == "--apps")
            service_opts.max_apps = static_cast<std::size_t>(
                parseCount(prog, arg, value));
        else if (arg == "--queue-depth")
            server_opts.queue_depth = static_cast<std::size_t>(
                parseCount(prog, arg, value));
        else if (arg == "--batch-max")
            server_opts.batch_max = static_cast<std::size_t>(
                parseCount(prog, arg, value));
        else if (arg == "--idle-timeout-ms")
            server_opts.idle_timeout_ms = static_cast<int>(
                parseCount(prog, arg, value));
        else if (arg == "--aging-state")
            aging_state_path = value;
        else if (arg == "--metrics")
            metrics_path = value;
        else if (arg == "--fault-plan")
            fault_plan = value;
        else if (arg == "--fault-seed")
            fault_seed = parseCount(prog, arg, value);
        else
            badFlag(prog,
                    util::cat("unknown argument '", arg,
                              "' (see --help)"));
    }

    if (!metrics_path.empty())
        telemetry::writeFilesAtExit(metrics_path, "");
    if (fault_seed != 0 && fault_plan.empty())
        util::fatal("--fault-seed requires --fault-plan");
    if (!fault_plan.empty()) {
        auto plan = fault::loadFaultPlan(fault_plan);
        if (!plan)
            util::fatal(
                util::cat("--fault-plan: ", plan.error().str()));
        if (fault_seed != 0)
            plan.value().seed = fault_seed;
        fault::installFaultPlan(plan.value());
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    serve::EvaluationService service(service_opts);
    if (!aging_state_path.empty()) {
        // A future-version registry is a hard error (loading would
        // mean quarantining data a newer build wrote); corruption
        // is quarantined inside loadAgingRegistry.
        if (auto loaded = service.loadAgingRegistry(aging_state_path);
            !loaded)
            util::fatal(util::cat("--aging-state: ",
                                  loaded.error().str()));
    }
    serve::Server server(service, server_opts);
    if (auto started = server.start(); !started)
        util::fatal(util::cat("ramp_served: ",
                              started.error().str()));

    std::fprintf(stdout, "ramp_served: listening on 127.0.0.1:%u\n",
                 server.port());
    std::fflush(stdout);
    if (!port_file.empty()) {
        // Written after listen() succeeds, so a watcher that sees the
        // file can connect immediately.
        std::ofstream out(port_file);
        out << server.port() << "\n";
        if (!out)
            util::fatal(util::cat("cannot write --port-file ",
                                  port_file));
    }

    while (g_signal == 0 && !server.draining())
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));

    std::fprintf(stderr, "ramp_served: draining (%s)\n",
                 g_signal ? "signal" : "shutdown request");
    server.stop();
    if (!aging_state_path.empty()) {
        if (auto saved = service.saveAgingRegistry(aging_state_path);
            !saved)
            util::warn(util::cat("--aging-state: ",
                                 saved.error().str()));
    }
    return 0;
}
