#include "serve/service.hh"

#include <utility>

#include "util/logging.hh"

namespace ramp {
namespace serve {

using util::ErrorCode;
using util::JsonValue;
using util::RampError;
using util::Result;

EvaluationService::EvaluationService(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_path),
      pool_(opts_.threads),
      explorer_(opts_.eval_params, &cache_, &pool_),
      apps_(workload::standardApps())
{
    if (opts_.max_apps && opts_.max_apps < apps_.size())
        apps_.resize(opts_.max_apps);
}

void
EvaluationService::ensureReady()
{
    std::call_once(ready_once_, [&] {
        base_ops_.resize(apps_.size());
        pool_.parallelFor(apps_.size(), [&](std::size_t i) {
            base_ops_[i] = explorer_.evaluateBase(apps_[i]);
        });
        alpha_qual_ = drm::alphaQualFromBaseline(base_ops_);
    });
}

Result<std::size_t>
EvaluationService::appIndex(const std::string &app) const
{
    for (std::size_t i = 0; i < apps_.size(); ++i)
        if (apps_[i].name == app)
            return i;
    std::string known;
    for (const auto &a : apps_)
        known += known.empty() ? a.name : ", " + a.name;
    return RampError{ErrorCode::InvalidInput,
                     util::cat("unknown application '", app,
                               "' (serving: ", known, ")")};
}

Result<core::OperatingPoint>
EvaluationService::evaluatePoint(const std::string &app,
                                 drm::AdaptationSpace space,
                                 std::size_t config)
{
    auto idx = appIndex(app);
    if (!idx)
        return idx.error();
    const auto configs = drm::configSpace(space);
    if (config >= configs.size())
        return RampError{
            ErrorCode::InvalidInput,
            util::cat("config index ", config, " out of range for ",
                      drm::adaptationSpaceName(space), " (",
                      configs.size(), " configurations)")};
    return explorer_.tryEvaluate(configs[config],
                                 apps_[idx.value()]);
}

std::shared_ptr<const core::Qualification>
EvaluationService::qualification(double t_qual_k)
{
    std::lock_guard lock(qual_mu_);
    auto it = quals_.find(t_qual_k);
    if (it != quals_.end())
        return it->second;
    core::QualificationSpec spec;
    spec.t_qual_k = t_qual_k;
    spec.alpha_qual = alpha_qual_;
    auto qual = std::make_shared<const core::Qualification>(spec);
    quals_.emplace(t_qual_k, qual);
    return qual;
}

Result<JsonValue>
EvaluationService::encodeEvaluation(const Request &req,
                                    const core::OperatingPoint &op)
{
    auto idx = appIndex(req.app);
    if (!idx)
        return idx.error();
    const core::OperatingPoint &base = base_ops_[idx.value()];
    const auto qual = qualification(req.t_qual_k);

    JsonValue out = JsonValue::makeObject();
    out.set("app", JsonValue::makeString(req.app));
    out.set("space", JsonValue::makeString(
                         drm::adaptationSpaceName(req.space)));
    out.set("config", JsonValue::makeNumber(
                          static_cast<double>(req.config)));
    out.set("frequency_ghz",
            JsonValue::makeNumber(op.config.frequency_ghz));
    out.set("voltage_v", JsonValue::makeNumber(op.config.voltage_v));
    out.set("perf_rel",
            JsonValue::makeNumber(op.uopsPerSecond() /
                                  base.uopsPerSecond()));
    out.set("ipc", JsonValue::makeNumber(op.ipc()));
    out.set("t_qual_k", JsonValue::makeNumber(req.t_qual_k));
    out.set("fit", JsonValue::makeNumber(
                       drm::operatingPointFit(*qual, op)));
    out.set("max_temp_k", JsonValue::makeNumber(op.maxTemp()));
    out.set("avg_temp_k", JsonValue::makeNumber(op.avgTemp()));
    out.set("power_w", JsonValue::makeNumber(op.totalPower()));
    // A non-converged fixed point is a *reported* condition, never a
    // silent drop: the caller decides whether to trust the numbers.
    out.set("converged", JsonValue::makeBool(op.converged));
    return out;
}

Result<std::shared_ptr<const drm::ExploredApp>>
EvaluationService::explored(std::size_t app_index,
                            drm::AdaptationSpace space)
{
    const auto key = std::make_pair(app_index, space);
    auto it = explored_.find(key);
    if (it != explored_.end())
        return it->second;
    auto result = std::make_shared<const drm::ExploredApp>(
        explorer_.explore(apps_[app_index], space));
    explored_.emplace(key, result);
    return result;
}

Result<JsonValue>
EvaluationService::select(const Request &req)
{
    auto idx = appIndex(req.app);
    if (!idx)
        return idx.error();
    const auto qual = qualification(req.t_qual_k);
    const bool drm_policy = req.type == RequestType::SelectDrm;

    drm::Selection sel;
    if (req.surrogate != drm::surrogate::SurrogateMode::Off) {
        // Tiered fast path: surrogate-ranked, exactly-confirmed --
        // the winner is identical to the exhaustive branch below
        // (the serve tests assert the reply bytes match), only the
        // number of exact simulations changes.
        if (!tiered_)
            tiered_ =
                std::make_unique<drm::surrogate::TieredExplorer>(
                    explorer_, &cache_);
        drm::surrogate::TieredOptions topts = tiered_->options();
        topts.mode = req.surrogate;
        tiered_->setOptions(topts);
        const workload::AppProfile &app = apps_[idx.value()];
        sel = drm_policy
                  ? tiered_->selectDrm(app, req.space, *qual)
                        .selection
                  : tiered_
                        ->selectDtm(app, req.space, req.t_design_k,
                                    *qual)
                        .selection;
    } else {
        auto space = explored(idx.value(), req.space);
        if (!space)
            return space.error();
        sel = drm_policy ? drm::selectDrm(*space.value(), *qual)
                         : drm::selectDtm(*space.value(),
                                          req.t_design_k, *qual);
    }

    JsonValue out = JsonValue::makeObject();
    out.set("app", JsonValue::makeString(req.app));
    out.set("space", JsonValue::makeString(
                         drm::adaptationSpaceName(req.space)));
    out.set("policy",
            JsonValue::makeString(drm_policy ? "drm" : "dtm"));
    out.set("t_qual_k", JsonValue::makeNumber(req.t_qual_k));
    if (!drm_policy)
        out.set("t_design_k", JsonValue::makeNumber(req.t_design_k));
    out.set("index", JsonValue::makeNumber(
                         static_cast<double>(sel.index)));
    out.set("frequency_ghz",
            JsonValue::makeNumber(sel.config.frequency_ghz));
    out.set("voltage_v", JsonValue::makeNumber(sel.config.voltage_v));
    out.set("window_size", JsonValue::makeNumber(static_cast<double>(
                               sel.config.window_size)));
    out.set("num_int_alu", JsonValue::makeNumber(static_cast<double>(
                               sel.config.num_int_alu)));
    out.set("num_fpu", JsonValue::makeNumber(static_cast<double>(
                           sel.config.num_fpu)));
    out.set("perf_rel", JsonValue::makeNumber(sel.perf_rel));
    out.set("fit", JsonValue::makeNumber(sel.fit));
    out.set("max_temp_k", JsonValue::makeNumber(sel.max_temp_k));
    out.set("feasible", JsonValue::makeBool(sel.feasible));
    out.set("converged",
            JsonValue::makeBool(sel.index < sel.table.size()
                                    ? sel.table[sel.index].converged
                                    : true));
    return out;
}

JsonValue
EvaluationService::cacheStatsJson() const
{
    const auto stats = cache_.stats();
    JsonValue out = JsonValue::makeObject();
    out.set("records", JsonValue::makeNumber(
                           static_cast<double>(cache_.size())));
    out.set("hits", JsonValue::makeNumber(
                        static_cast<double>(stats.hits)));
    out.set("misses", JsonValue::makeNumber(
                          static_cast<double>(stats.misses)));
    out.set("appended", JsonValue::makeNumber(
                            static_cast<double>(stats.appended)));
    out.set("loaded", JsonValue::makeNumber(
                          static_cast<double>(stats.loaded)));
    return out;
}

} // namespace serve
} // namespace ramp
