#include "serve/service.hh"

// ramp-lint: guarded_by(qual_mu_): quals_
// ramp-lint: guarded_by(aging_mu_): chips_
// ramp-lint: guarded_by(aging_mu_): chip_seq_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "aging/slack_bank.hh"
#include "cmp/chip_drm.hh"
#include "cmp/floorplan.hh"
#include "util/constants.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace serve {

using util::ErrorCode;
using util::JsonValue;
using util::RampError;
using util::Result;

EvaluationService::EvaluationService(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_path, opts_.replicated_cache),
      pool_(opts_.threads),
      explorer_(opts_.eval_params, &cache_, &pool_),
      apps_(workload::standardApps())
{
    if (opts_.max_apps && opts_.max_apps < apps_.size())
        apps_.resize(opts_.max_apps);
}

void
EvaluationService::ensureReady()
{
    std::call_once(ready_once_, [&] {
        base_ops_.resize(apps_.size());
        const auto batch =
            pool_.parallelFor(apps_.size(), [&](std::size_t i) {
                base_ops_[i] = explorer_.evaluateBase(apps_[i]);
            });
        if (!batch.ok())
            throw util::RampException(
                batch.failures.front().second);
        alpha_qual_ = drm::alphaQualFromBaseline(base_ops_);
    });
}

Result<std::size_t>
EvaluationService::appIndex(const std::string &app) const
{
    for (std::size_t i = 0; i < apps_.size(); ++i)
        if (apps_[i].name == app)
            return i;
    std::string known;
    for (const auto &a : apps_)
        known += known.empty() ? a.name : ", " + a.name;
    return RampError{ErrorCode::InvalidInput,
                     util::cat("unknown application '", app,
                               "' (serving: ", known, ")")};
}

Result<core::OperatingPoint>
EvaluationService::evaluatePoint(const std::string &app,
                                 drm::AdaptationSpace space,
                                 std::size_t config)
{
    auto idx = appIndex(app);
    if (!idx)
        return idx.error();
    const auto configs = drm::configSpace(space);
    if (config >= configs.size())
        return RampError{
            ErrorCode::InvalidInput,
            util::cat("config index ", config, " out of range for ",
                      drm::adaptationSpaceName(space), " (",
                      configs.size(), " configurations)")};
    return explorer_.tryEvaluate(configs[config],
                                 apps_[idx.value()]);
}

std::shared_ptr<const core::Qualification>
EvaluationService::qualification(double t_qual_k)
{
    std::lock_guard lock(qual_mu_);
    auto it = quals_.find(t_qual_k);
    if (it != quals_.end())
        return it->second;
    core::QualificationSpec spec;
    spec.t_qual_k = t_qual_k;
    spec.alpha_qual = alpha_qual_;
    auto qual = std::make_shared<const core::Qualification>(spec);
    quals_.emplace(t_qual_k, qual);
    return qual;
}

Result<JsonValue>
EvaluationService::encodeEvaluation(const Request &req,
                                    const core::OperatingPoint &op)
{
    auto idx = appIndex(req.app);
    if (!idx)
        return idx.error();
    const core::OperatingPoint &base = base_ops_[idx.value()];
    const auto qual = qualification(req.t_qual_k);

    JsonValue out = JsonValue::makeObject();
    out.set("app", JsonValue::makeString(req.app));
    out.set("space", JsonValue::makeString(
                         drm::adaptationSpaceName(req.space)));
    out.set("config", JsonValue::makeNumber(
                          static_cast<double>(req.config)));
    out.set("frequency_ghz",
            JsonValue::makeNumber(op.config.frequency_ghz));
    out.set("voltage_v", JsonValue::makeNumber(op.config.voltage_v));
    out.set("perf_rel",
            JsonValue::makeNumber(op.uopsPerSecond() /
                                  base.uopsPerSecond()));
    out.set("ipc", JsonValue::makeNumber(op.ipc()));
    out.set("t_qual_k", JsonValue::makeNumber(req.t_qual_k));
    out.set("fit", JsonValue::makeNumber(
                       drm::operatingPointFit(*qual, op)));
    out.set("max_temp_k", JsonValue::makeNumber(op.maxTemp()));
    out.set("avg_temp_k", JsonValue::makeNumber(op.avgTemp()));
    out.set("power_w", JsonValue::makeNumber(op.totalPower()));
    // A non-converged fixed point is a *reported* condition, never a
    // silent drop: the caller decides whether to trust the numbers.
    out.set("converged", JsonValue::makeBool(op.converged));
    return out;
}

Result<std::shared_ptr<const drm::ExploredApp>>
EvaluationService::explored(std::size_t app_index,
                            drm::AdaptationSpace space)
{
    const auto key = std::make_pair(app_index, space);
    auto it = explored_.find(key);
    if (it != explored_.end())
        return it->second;
    auto result = std::make_shared<const drm::ExploredApp>(
        explorer_.explore(apps_[app_index], space));
    explored_.emplace(key, result);
    return result;
}

Result<JsonValue>
EvaluationService::select(const Request &req)
{
    auto idx = appIndex(req.app);
    if (!idx)
        return idx.error();
    const auto qual = qualification(req.t_qual_k);
    const bool drm_policy = req.type == RequestType::SelectDrm;

    drm::Selection sel;
    if (req.surrogate != drm::surrogate::SurrogateMode::Off) {
        // Tiered fast path: surrogate-ranked, exactly-confirmed --
        // the winner is identical to the exhaustive branch below
        // (the serve tests assert the reply bytes match), only the
        // number of exact simulations changes.
        if (!tiered_)
            tiered_ =
                std::make_unique<drm::surrogate::TieredExplorer>(
                    explorer_, &cache_);
        drm::surrogate::TieredOptions topts = tiered_->options();
        topts.mode = req.surrogate;
        tiered_->setOptions(topts);
        const workload::AppProfile &app = apps_[idx.value()];
        sel = drm_policy
                  ? tiered_->selectDrm(app, req.space, *qual)
                        .selection
                  : tiered_
                        ->selectDtm(app, req.space, req.t_design_k,
                                    *qual)
                        .selection;
    } else {
        auto space = explored(idx.value(), req.space);
        if (!space)
            return space.error();
        sel = drm_policy ? drm::selectDrm(*space.value(), *qual)
                         : drm::selectDtm(*space.value(),
                                          req.t_design_k, *qual);
    }

    JsonValue out = JsonValue::makeObject();
    out.set("app", JsonValue::makeString(req.app));
    out.set("space", JsonValue::makeString(
                         drm::adaptationSpaceName(req.space)));
    out.set("policy",
            JsonValue::makeString(drm_policy ? "drm" : "dtm"));
    out.set("t_qual_k", JsonValue::makeNumber(req.t_qual_k));
    if (!drm_policy)
        out.set("t_design_k", JsonValue::makeNumber(req.t_design_k));
    out.set("index", JsonValue::makeNumber(
                         static_cast<double>(sel.index)));
    out.set("frequency_ghz",
            JsonValue::makeNumber(sel.config.frequency_ghz));
    out.set("voltage_v", JsonValue::makeNumber(sel.config.voltage_v));
    out.set("window_size", JsonValue::makeNumber(static_cast<double>(
                               sel.config.window_size)));
    out.set("num_int_alu", JsonValue::makeNumber(static_cast<double>(
                               sel.config.num_int_alu)));
    out.set("num_fpu", JsonValue::makeNumber(static_cast<double>(
                           sel.config.num_fpu)));
    out.set("perf_rel", JsonValue::makeNumber(sel.perf_rel));
    out.set("fit", JsonValue::makeNumber(sel.fit));
    out.set("max_temp_k", JsonValue::makeNumber(sel.max_temp_k));
    out.set("feasible", JsonValue::makeBool(sel.feasible));
    out.set("converged",
            JsonValue::makeBool(sel.index < sel.table.size()
                                    ? sel.table[sel.index].converged
                                    : true));
    return out;
}

Result<JsonValue>
EvaluationService::selectChip(const Request &req)
{
    const std::size_t n = req.core_apps.size();

    // Resolve the chip shape first: the request's floorplan (already
    // structurally validated by parseRequest) or the built-in grid.
    // grid() treats unsupported counts as a caller bug, so guard the
    // wire path with a structured error instead.
    Result<cmp::ChipFloorplan> plan =
        req.floorplan.isObject()
            ? cmp::ChipFloorplan::tryParse(req.floorplan, "request")
            : (n == 1 || n == 2 || n == 4 || n == 8)
                  ? Result<cmp::ChipFloorplan>(
                        cmp::ChipFloorplan::grid(n))
                  : Result<cmp::ChipFloorplan>(RampError{
                        ErrorCode::InvalidInput,
                        util::cat("no built-in floorplan for ", n,
                                  " cores (1, 2, 4, or 8); send an "
                                  "explicit 'floorplan'")});
    if (!plan)
        return plan.error();
    if (plan.value().numCores() != n)
        return RampError{
            ErrorCode::InvalidInput,
            util::cat("select_chip names ", n, " apps but the "
                      "floorplan places ",
                      plan.value().numCores(), " cores")};

    std::vector<std::shared_ptr<const drm::ExploredApp>> spaces;
    spaces.reserve(n);
    for (const auto &app : req.core_apps) {
        auto idx = appIndex(app);
        if (!idx)
            return idx.error();
        auto space = explored(idx.value(), req.space);
        if (!space)
            return space.error();
        spaces.push_back(std::move(space.value()));
    }
    std::vector<const drm::ExploredApp *> cores;
    cores.reserve(n);
    for (const auto &space : spaces)
        cores.push_back(space.get());

    // One shared qualification prices every core's points, so FIT is
    // comparable and summable chip-wide; the chip budget is the
    // default per-core target scaled by the core count.
    core::QualificationSpec chip_spec;
    chip_spec.t_qual_k = req.t_qual_k;
    chip_spec.alpha_qual = alpha_qual_;
    const double budget_fit = chip_spec.target_fit * static_cast<double>(n);
    chip_spec.target_fit = budget_fit;

    const cmp::ChipSelection sel =
        cmp::selectChipDrm(cores, chip_spec, req.budget_policy);

    JsonValue out = JsonValue::makeObject();
    JsonValue apps = JsonValue::makeArray();
    for (const auto &app : req.core_apps)
        apps.push(JsonValue::makeString(app));
    out.set("apps", std::move(apps));
    out.set("space", JsonValue::makeString(
                         drm::adaptationSpaceName(req.space)));
    out.set("policy", JsonValue::makeString(
                          cmp::budgetPolicyName(req.budget_policy)));
    out.set("t_qual_k", JsonValue::makeNumber(req.t_qual_k));
    out.set("budget_fit", JsonValue::makeNumber(budget_fit));
    out.set("chip_fit", JsonValue::makeNumber(sel.chip_fit));
    out.set("throughput_rel",
            JsonValue::makeNumber(sel.throughput_rel));
    out.set("feasible", JsonValue::makeBool(sel.feasible));
    JsonValue core_list = JsonValue::makeArray();
    for (std::size_t c = 0; c < n; ++c) {
        const drm::Selection &core = sel.cores[c];
        JsonValue entry = JsonValue::makeObject();
        entry.set("app", JsonValue::makeString(req.core_apps[c]));
        entry.set("index", JsonValue::makeNumber(
                               static_cast<double>(core.index)));
        entry.set("frequency_ghz",
                  JsonValue::makeNumber(core.config.frequency_ghz));
        entry.set("voltage_v",
                  JsonValue::makeNumber(core.config.voltage_v));
        entry.set("perf_rel", JsonValue::makeNumber(core.perf_rel));
        entry.set("fit", JsonValue::makeNumber(core.fit));
        entry.set("budget_fit",
                  JsonValue::makeNumber(sel.budget_fit[c]));
        entry.set("max_temp_k",
                  JsonValue::makeNumber(core.max_temp_k));
        entry.set("feasible", JsonValue::makeBool(core.feasible));
        core_list.push(std::move(entry));
    }
    out.set("cores", std::move(core_list));
    return out;
}

Result<JsonValue>
EvaluationService::reportUsage(const Request &req)
{
    auto delta = aging::agingStateFromJson(req.state);
    if (!delta)
        return delta.error();

    double age_hours = 0.0;
    double consumed_frac = 0.0;
    double max_pair = 0.0;
    bool applied = true;
    {
        std::lock_guard lock(aging_mu_);
        aging::AgingState &state = chips_[req.chip];
        // Sequenced merges are idempotent: a replayed (or stale) seq
        // acknowledges with the current summary instead of re-adding
        // the delta, so a retry after a lost reply cannot
        // double-count damage. seq 0 = legacy, merged every time.
        std::uint64_t &last_seq = chip_seq_[req.chip];
        if (req.seq != 0 && req.seq <= last_seq) {
            applied = false;
        } else {
            state.add(delta.value());
            if (req.seq != 0)
                last_seq = req.seq;
        }
        age_hours = state.age_hours;
        consumed_frac = state.totalDamage();
        max_pair = state.maxPairDamage();
    }

    JsonValue out = JsonValue::makeObject();
    out.set("chip", JsonValue::makeString(req.chip));
    out.set("age_hours", JsonValue::makeNumber(age_hours));
    out.set("consumed", JsonValue::makeNumber(consumed_frac));
    out.set("max_pair_consumed", JsonValue::makeNumber(max_pair));
    if (req.seq != 0)
        out.set("applied", JsonValue::makeBool(applied));
    return out;
}

Result<JsonValue>
EvaluationService::cacheAppend(const Request &req)
{
    const bool applied = cache_.putSerialized(req.key, req.record);
    if (!applied && !cache_.contains(req.key))
        return RampError{
            ErrorCode::InvalidInput,
            util::cat("cache_append: record for key '", req.key,
                      "' is malformed or from a stale format "
                      "version")};
    JsonValue out = JsonValue::makeObject();
    out.set("applied", JsonValue::makeBool(applied));
    out.set("records", JsonValue::makeNumber(
                           static_cast<double>(cache_.size())));
    out.set("epoch", JsonValue::makeNumber(
                         static_cast<double>(cache_.epoch())));
    return out;
}

Result<JsonValue>
EvaluationService::remainingLifetime(const Request &req)
{
    auto idx = appIndex(req.app);
    if (!idx)
        return idx.error();

    auto state = chipState(req.chip);
    if (!state)
        return RampError{
            ErrorCode::InvalidInput,
            util::cat("unknown chip '", req.chip,
                      "' (send report_usage before asking for its "
                      "remaining lifetime)")};

    aging::SlackBankParams policy_params;
    policy_params.base_t_qual_k = req.t_qual_k;
    const aging::SlackBankPolicy policy(policy_params);
    const double consumed_frac = state->totalDamage();
    const double slack_frac = policy.slackFrac(*state);
    const double t_eff_k = policy.effectiveTQualK(*state);

    // The slack-banking trade rides through the *unmodified*
    // Selection API: a chip with banked slack selects against a
    // hotter effective T_qual (more feasible points, a faster
    // winner); an over-spent chip selects against a cooler one and
    // throttles. Oracle and surrogate paths both apply.
    Request sel_req = req;
    sel_req.type = RequestType::SelectDrm;
    sel_req.t_qual_k = t_eff_k;
    auto selection = select(sel_req);
    if (!selection)
        return selection.error();

    const JsonValue *fit = selection.value().find("fit");
    const double point_fit =
        fit && fit->isNumber() ? fit->number : 0.0;
    const double target_fit =
        qualification(req.t_qual_k)->spec().target_fit;
    const double eta_hours = aging::remainingHoursAtFit(
        *state, point_fit, target_fit,
        policy_params.service_life_years);

    JsonValue out = JsonValue::makeObject();
    out.set("chip", JsonValue::makeString(req.chip));
    out.set("age_hours", JsonValue::makeNumber(state->age_hours));
    out.set("consumed", JsonValue::makeNumber(consumed_frac));
    out.set("max_pair_consumed",
            JsonValue::makeNumber(state->maxPairDamage()));
    out.set("slack", JsonValue::makeNumber(slack_frac));
    out.set("t_qual_base_k", JsonValue::makeNumber(req.t_qual_k));
    out.set("t_qual_eff_k", JsonValue::makeNumber(t_eff_k));
    if (std::isfinite(eta_hours)) {
        out.set("eta_hours", JsonValue::makeNumber(eta_hours));
        out.set("eta_years", JsonValue::makeNumber(
                                 eta_hours / util::hours_per_year));
    } else {
        // A zero-FIT selection never spends the budget; JSON has no
        // infinity, so say so structurally instead.
        out.set("eta_unbounded", JsonValue::makeBool(true));
    }
    out.set("selection", std::move(selection.value()));
    return out;
}

std::optional<aging::AgingState>
EvaluationService::chipState(const std::string &chip) const
{
    std::lock_guard lock(aging_mu_);
    auto it = chips_.find(chip);
    if (it == chips_.end())
        return std::nullopt;
    return it->second;
}

namespace {

/** Registry files share the state schema's version number. */
constexpr int registry_version = aging::aging_state_version;

telemetry::Counter &
registryQuarantineCounter()
{
    static telemetry::Counter c =
        telemetry::counter("aging.state_quarantined");
    return c;
}

/** Parse {"v":N,"chips":{name:state}}; CorruptRecord on any shape
 *  defect, InvalidInput when the version is from the future. */
Result<std::map<std::string, aging::AgingState>>
registryFromJson(const JsonValue &doc)
{
    if (!doc.isObject() || doc.object.size() != 2)
        return RampError{ErrorCode::CorruptRecord,
                         "aging registry must be an object with "
                         "exactly 'v' and 'chips'"};
    const JsonValue *v = doc.find("v");
    if (!v || !v->isNumber() ||
        v->number != static_cast<double>(static_cast<int>(v->number)))
        return RampError{ErrorCode::CorruptRecord,
                         "aging registry needs an integer 'v'"};
    if (static_cast<int>(v->number) > registry_version)
        return RampError{
            ErrorCode::InvalidInput,
            util::cat("aging registry version ",
                      static_cast<int>(v->number),
                      " is newer than this build supports (v",
                      registry_version,
                      "); refusing to load or quarantine it")};
    const JsonValue *chips = doc.find("chips");
    if (!chips || !chips->isObject())
        return RampError{ErrorCode::CorruptRecord,
                         "aging registry needs a 'chips' object"};
    std::map<std::string, aging::AgingState> out;
    for (const auto &[name, state_doc] : chips->object) {
        auto state = aging::agingStateFromJson(state_doc);
        if (!state)
            return RampError{
                state.error().code,
                util::cat("aging registry chip '", name, "': ",
                          state.error().message)};
        out.emplace(name, std::move(state.value()));
    }
    return out;
}

} // namespace

Result<void>
EvaluationService::loadAgingRegistry(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return {}; // Missing file: a fresh fleet.
    std::ostringstream text;
    text << is.rdbuf();
    std::string err;
    const auto doc = util::parseJson(text.str(), &err);
    auto parsed =
        doc ? registryFromJson(*doc)
            : Result<std::map<std::string, aging::AgingState>>(
                  RampError{ErrorCode::CorruptRecord,
                            util::cat("aging registry '", path,
                                      "' is not valid JSON: ", err)});
    if (!parsed) {
        if (parsed.error().code == ErrorCode::InvalidInput)
            return parsed.error(); // Future version: hard stop.
        const std::string quarantine = path + ".quarantine";
        std::rename(path.c_str(), quarantine.c_str());
        registryQuarantineCounter().add();
        util::warn(util::cat("aging registry '", path,
                             "' is corrupt (", parsed.error().message,
                             "); quarantined to '", quarantine,
                             "', starting fresh"));
        return {};
    }
    std::lock_guard lock(aging_mu_);
    chips_ = std::move(parsed.value());
    return {};
}

Result<void>
EvaluationService::saveAgingRegistry(const std::string &path) const
{
    JsonValue chips = JsonValue::makeObject();
    {
        std::lock_guard lock(aging_mu_);
        for (const auto &[name, state] : chips_)
            chips.set(name, aging::toJson(state));
    }
    JsonValue doc = JsonValue::makeObject();
    doc.set("v", JsonValue::makeNumber(registry_version));
    doc.set("chips", std::move(chips));

    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return RampError{
                ErrorCode::IoFailure,
                util::cat("cannot open '", tmp, "' for writing")};
        util::writeJson(os, doc);
        os << '\n';
        os.flush();
        if (!os)
            return RampError{ErrorCode::IoFailure,
                             util::cat("write to '", tmp,
                                       "' failed")};
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return RampError{ErrorCode::IoFailure,
                         util::cat("cannot rename '", tmp, "' to '",
                                   path, "'")};
    return {};
}

JsonValue
EvaluationService::cacheStatsJson() const
{
    const auto stats = cache_.stats();
    JsonValue out = JsonValue::makeObject();
    out.set("records", JsonValue::makeNumber(
                           static_cast<double>(cache_.size())));
    out.set("hits", JsonValue::makeNumber(
                        static_cast<double>(stats.hits)));
    out.set("misses", JsonValue::makeNumber(
                          static_cast<double>(stats.misses)));
    out.set("appended", JsonValue::makeNumber(
                            static_cast<double>(stats.appended)));
    out.set("loaded", JsonValue::makeNumber(
                          static_cast<double>(stats.loaded)));
    return out;
}

} // namespace serve
} // namespace ramp
