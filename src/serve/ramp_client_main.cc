/**
 * @file
 * Command-line client for ramp_served. One invocation, one request:
 *
 *   ramp_client --port N evaluate APP SPACE CONFIG [T_QUAL_K]
 *   ramp_client --port N select-drm APP SPACE [T_QUAL_K]
 *   ramp_client --port N select-dtm APP SPACE [T_DESIGN_K [T_QUAL_K]]
 *   ramp_client --port N stats
 *   ramp_client --port N shutdown
 *   ramp_client --port N hello
 *   ramp_client --port N report-usage CHIP STATEFILE
 *   ramp_client --port N remaining-lifetime CHIP APP SPACE [T_QUAL_K]
 *
 * Every invocation opens a Session: the protocol version is
 * negotiated once with a hello, and requests go out at the
 * negotiated version (v0 against a pre-versioning daemon). The
 * fleet commands (report-usage, remaining-lifetime) need v2 and
 * fail with a structured error against older servers.
 *
 * The reply's result object is printed to stdout as one JSON line.
 * Error replies (including "overloaded" and "shutting-down") print
 * the structured code to stderr and exit nonzero.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "aging/state.hh"
#include "serve/client.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace {

void
usage(const char *prog, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s --port N [--timeout-ms N] COMMAND [args]\n"
        "commands:\n"
        "  evaluate APP SPACE CONFIG [T_QUAL_K]\n"
        "  select-drm APP SPACE [T_QUAL_K]\n"
        "  select-dtm APP SPACE [T_DESIGN_K [T_QUAL_K]]\n"
        "  stats\n"
        "  shutdown\n"
        "  hello\n"
        "  report-usage CHIP STATEFILE\n"
        "  remaining-lifetime CHIP APP SPACE [T_QUAL_K]\n"
        "SPACE is one of Arch, DVS, ArchDVS, FetchThrottle.\n",
        prog);
}

double
parseTemp(const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || *end != '\0')
        ramp::util::fatal(ramp::util::cat(
            "expected a temperature in kelvin, got '", value, "'"));
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ramp;

    serve::ClientOptions opts;
    std::vector<std::string> words;

    const char *prog = argc > 0 ? argv[0] : "ramp_client";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(prog, stdout);
            return 0;
        }
        if (arg == "--port" || arg == "--timeout-ms") {
            if (i + 1 >= argc)
                util::fatal(util::cat(arg, " needs a value"));
            const std::string value = argv[++i];
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0')
                util::fatal(util::cat(arg,
                                      " needs an integer, got '",
                                      value, "'"));
            if (arg == "--port")
                opts.port = static_cast<std::uint16_t>(n);
            else
                opts.io_timeout_ms = static_cast<int>(n);
            continue;
        }
        words.push_back(arg);
    }
    if (opts.port == 0 || words.empty()) {
        usage(prog, stderr);
        util::fatal("need --port and a command");
    }

    const std::string &command = words[0];
    const auto arity = [&](std::size_t lo, std::size_t hi) {
        const std::size_t n = words.size() - 1;
        if (n < lo || n > hi) {
            usage(prog, stderr);
            util::fatal(util::cat("wrong argument count for ",
                                  command));
        }
    };
    const auto space = [&](const std::string &name) {
        const auto s = drm::adaptationSpaceFromName(name);
        if (!s)
            util::fatal(util::cat("unknown adaptation space '", name,
                                  "'"));
        return *s;
    };

    auto session = serve::Session::open(opts);
    if (!session)
        util::fatal(util::cat("cannot connect to 127.0.0.1:",
                              opts.port, ": ",
                              session.error().str()));

    util::Result<util::JsonValue> result =
        util::RampError{util::ErrorCode::InvalidInput, "unset"};
    if (command == "evaluate") {
        arity(3, 4);
        result = session.value().evaluate(
            words[1], space(words[2]),
            static_cast<std::size_t>(
                std::strtoull(words[3].c_str(), nullptr, 10)),
            words.size() > 4 ? parseTemp(words[4]) : 345.0);
    } else if (command == "select-drm") {
        arity(2, 3);
        result = session.value().selectDrm(
            words[1], space(words[2]),
            words.size() > 3 ? parseTemp(words[3]) : 345.0);
    } else if (command == "select-dtm") {
        arity(2, 4);
        result = session.value().selectDtm(
            words[1], space(words[2]),
            words.size() > 3 ? parseTemp(words[3]) : 370.0,
            words.size() > 4 ? parseTemp(words[4]) : 345.0);
    } else if (command == "stats") {
        arity(0, 0);
        result = session.value().stats();
    } else if (command == "shutdown") {
        arity(0, 0);
        auto done = session.value().requestShutdown();
        if (!done)
            util::fatal(util::cat("shutdown: ",
                                  done.error().str()));
        std::fprintf(stdout, "{\"draining\":true}\n");
        return 0;
    } else if (command == "hello") {
        arity(0, 0);
        // The session already negotiated; report what it learned.
        util::JsonValue out = util::JsonValue::makeObject();
        out.set("negotiated_v", util::JsonValue::makeNumber(
                                    session.value().version()));
        result = std::move(out);
    } else if (command == "report-usage") {
        arity(2, 2);
        auto state = aging::loadAgingState(words[2]);
        if (!state)
            util::fatal(util::cat("report-usage: ",
                                  state.error().str()));
        result = session.value().reportUsage(
            words[1], aging::toJson(state.value()));
    } else if (command == "remaining-lifetime") {
        arity(3, 4);
        result = session.value().remainingLifetime(
            words[1], words[2], space(words[3]),
            words.size() > 4 ? parseTemp(words[4]) : 345.0);
    } else {
        usage(prog, stderr);
        util::fatal(util::cat("unknown command '", command, "'"));
    }

    if (!result) {
        std::fprintf(stderr, "%s: %s\n", command.c_str(),
                     result.error().str().c_str());
        return 1;
    }
    std::fprintf(stdout, "%s\n",
                 util::writeJson(result.value()).c_str());
    return 0;
}
