/**
 * @file
 * Command-line client for ramp_served / ramp_routed. One invocation,
 * one request:
 *
 *   ramp_client --port N evaluate APP SPACE CONFIG [T_QUAL_K]
 *   ramp_client --port N select-drm APP SPACE [T_QUAL_K]
 *   ramp_client --port N select-dtm APP SPACE [T_DESIGN_K [T_QUAL_K]]
 *   ramp_client --port N stats
 *   ramp_client --port N shutdown
 *   ramp_client --port N hello
 *   ramp_client --port N report-usage CHIP STATEFILE
 *   ramp_client --port N remaining-lifetime CHIP APP SPACE [T_QUAL_K]
 *   ramp_client --port N select-chip POLICY SPACE APP [APP...]
 *
 * Every invocation opens a Session: the protocol version is
 * negotiated once with a hello, and requests go out at the
 * negotiated version (v0 against a pre-versioning daemon). The
 * fleet commands (report-usage, remaining-lifetime) need v2 and
 * fail with a structured error against older servers.
 *
 * --retries N turns transient failures (connect refusal, timeout,
 * torn stream, "overloaded", "shutting-down") into bounded
 * re-attempts on a *fresh* connection, sleeping the router's
 * deterministic jittered backoff (route/retry.hh) between attempts.
 * report-usage retries are safe against double-merging: the request
 * carries an idempotency seq that every attempt reuses. Evaluation
 * and validation errors never retry.
 *
 * The reply's result object is printed to stdout as one JSON line.
 * Error replies (including "overloaded" and "shutting-down") print
 * the structured code to stderr and exit nonzero.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "aging/state.hh"
#include "cmp/chip_drm.hh"
#include "fault/fault.hh"
#include "route/retry.hh"
#include "serve/client.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace {

void
usage(const char *prog, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s --port N [options] COMMAND [args]\n"
        "options:\n"
        "  --timeout-ms N   per-call I/O deadline (default 30000)\n"
        "  --retries N      re-attempts on transient failures\n"
        "                   (default 0 = fail fast)\n"
        "  --backoff-ms N   base retry backoff, jittered and doubled\n"
        "                   per attempt (default 50)\n"
        "  --fault-plan P   fault plan (inline JSON or file);\n"
        "                   arms conn-refuse for retry testing\n"
        "  --fault-seed N   override the plan's seed\n"
        "commands:\n"
        "  evaluate APP SPACE CONFIG [T_QUAL_K]\n"
        "  select-drm APP SPACE [T_QUAL_K]\n"
        "  select-dtm APP SPACE [T_DESIGN_K [T_QUAL_K]]\n"
        "  stats\n"
        "  shutdown\n"
        "  hello\n"
        "  report-usage CHIP STATEFILE\n"
        "  remaining-lifetime CHIP APP SPACE [T_QUAL_K]\n"
        "  select-chip POLICY SPACE APP [APP...]\n"
        "SPACE is one of Arch, DVS, ArchDVS, FetchThrottle.\n"
        "POLICY is per-core or global.\n",
        prog);
}

double
parseTemp(const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || *end != '\0')
        ramp::util::fatal(ramp::util::cat(
            "expected a temperature in kelvin, got '", value, "'"));
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ramp;

    serve::ClientOptions opts;
    route::RetryPolicy policy;
    policy.retries = 0; // CLI default: one attempt, fail fast.
    std::string fault_plan;
    std::uint64_t fault_seed = 0;
    std::vector<std::string> words;

    const char *prog = argc > 0 ? argv[0] : "ramp_client";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(prog, stdout);
            return 0;
        }
        if (arg == "--port" || arg == "--timeout-ms" ||
            arg == "--retries" || arg == "--backoff-ms" ||
            arg == "--fault-seed") {
            if (i + 1 >= argc)
                util::fatal(util::cat(arg, " needs a value"));
            const std::string value = argv[++i];
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0')
                util::fatal(util::cat(arg,
                                      " needs an integer, got '",
                                      value, "'"));
            if (arg == "--port")
                opts.port = static_cast<std::uint16_t>(n);
            else if (arg == "--timeout-ms")
                opts.io_timeout_ms = static_cast<int>(n);
            else if (arg == "--retries")
                policy.retries = static_cast<int>(n);
            else if (arg == "--backoff-ms")
                policy.backoff_ms = static_cast<int>(n);
            else
                fault_seed = n;
            continue;
        }
        if (arg == "--fault-plan") {
            if (i + 1 >= argc)
                util::fatal(util::cat(arg, " needs a value"));
            fault_plan = argv[++i];
            continue;
        }
        words.push_back(arg);
    }
    if (opts.port == 0 || words.empty()) {
        usage(prog, stderr);
        util::fatal("need --port and a command");
    }
    if (fault_seed != 0 && fault_plan.empty())
        util::fatal("--fault-seed requires --fault-plan");
    if (!fault_plan.empty()) {
        auto plan = fault::loadFaultPlan(fault_plan);
        if (!plan)
            util::fatal(
                util::cat("--fault-plan: ", plan.error().str()));
        if (fault_seed != 0)
            plan.value().seed = fault_seed;
        fault::installFaultPlan(plan.value());
        policy.seed = plan.value().seed;
    }

    const std::string &command = words[0];
    const auto arity = [&](std::size_t lo, std::size_t hi) {
        const std::size_t n = words.size() - 1;
        if (n < lo || n > hi) {
            usage(prog, stderr);
            util::fatal(util::cat("wrong argument count for ",
                                  command));
        }
    };
    const auto space = [&](const std::string &name) {
        const auto s = drm::adaptationSpaceFromName(name);
        if (!s)
            util::fatal(util::cat("unknown adaptation space '", name,
                                  "'"));
        return *s;
    };

    // report-usage needs one idempotency seq shared by every retry
    // of this invocation (and larger than any previous invocation's,
    // so the server never deduplicates a genuinely new report).
    const std::uint64_t report_seq = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());

    // One attempt: fresh connection, negotiate, dispatch.
    const auto attemptOnce =
        [&]() -> util::Result<util::JsonValue> {
        auto session = serve::Session::open(opts);
        if (!session)
            return session.error();
        if (command == "evaluate") {
            arity(3, 4);
            return session.value().evaluate(
                words[1], space(words[2]),
                static_cast<std::size_t>(
                    std::strtoull(words[3].c_str(), nullptr, 10)),
                words.size() > 4 ? parseTemp(words[4]) : 345.0);
        }
        if (command == "select-drm") {
            arity(2, 3);
            return session.value().selectDrm(
                words[1], space(words[2]),
                words.size() > 3 ? parseTemp(words[3]) : 345.0);
        }
        if (command == "select-dtm") {
            arity(2, 4);
            return session.value().selectDtm(
                words[1], space(words[2]),
                words.size() > 3 ? parseTemp(words[3]) : 370.0,
                words.size() > 4 ? parseTemp(words[4]) : 345.0);
        }
        if (command == "stats") {
            arity(0, 0);
            return session.value().stats();
        }
        if (command == "shutdown") {
            arity(0, 0);
            auto done = session.value().requestShutdown();
            if (!done)
                return done.error();
            util::JsonValue out = util::JsonValue::makeObject();
            out.set("draining", util::JsonValue::makeBool(true));
            return out;
        }
        if (command == "hello") {
            arity(0, 0);
            // The session already negotiated; report what it
            // learned.
            util::JsonValue out = util::JsonValue::makeObject();
            out.set("negotiated_v",
                    util::JsonValue::makeNumber(
                        session.value().version()));
            return out;
        }
        if (command == "report-usage") {
            arity(2, 2);
            auto state = aging::loadAgingState(words[2]);
            if (!state)
                return state.error();
            return session.value().reportUsage(
                words[1], aging::toJson(state.value()),
                report_seq);
        }
        if (command == "remaining-lifetime") {
            arity(3, 4);
            return session.value().remainingLifetime(
                words[1], words[2], space(words[3]),
                words.size() > 4 ? parseTemp(words[4]) : 345.0);
        }
        if (command == "select-chip") {
            arity(3, words.size()); // POLICY SPACE APP [APP...]
            const auto policy = cmp::budgetPolicyFromName(words[1]);
            if (!policy)
                util::fatal(util::cat("unknown budget policy '",
                                      words[1],
                                      "' (per-core or global)"));
            const std::vector<std::string> apps(words.begin() + 3,
                                                words.end());
            return session.value().selectChip(apps, space(words[2]),
                                              *policy);
        }
        usage(prog, stderr);
        util::fatal(util::cat("unknown command '", command, "'"));
    };

    util::Result<util::JsonValue> result =
        util::RampError{util::ErrorCode::InvalidInput, "unset"};
    for (int attempt = 0; attempt < policy.attempts(); ++attempt) {
        if (attempt > 0) {
            const int delay = policy.delayMs(opts.port, attempt);
            std::fprintf(stderr,
                         "%s: transient failure (%s), retry %d/%d "
                         "in %d ms\n",
                         command.c_str(),
                         result.error().str().c_str(), attempt,
                         policy.retries, delay);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
        // The deterministic conn-refuse fault models a backend
        // refusing connections; the retrying CLI is one of its
        // connection-establishing consumers.
        if (const fault::FaultPlan *plan = fault::activeFaultPlan();
            plan &&
            fault::refuseConnect(
                *plan, opts.port,
                static_cast<std::uint64_t>(attempt) + 1)) {
            result = util::RampError{
                util::ErrorCode::Unavailable,
                util::cat("connect to 127.0.0.1:", opts.port,
                          " refused (fault plan)")};
            continue;
        }
        result = attemptOnce();
        if (result ||
            !route::RetryPolicy::transient(result.error().code))
            break;
    }

    if (!result) {
        std::fprintf(stderr, "%s: %s\n", command.c_str(),
                     result.error().str().c_str());
        return 1;
    }
    std::fprintf(stdout, "%s\n",
                 util::writeJson(result.value()).c_str());
    return 0;
}
