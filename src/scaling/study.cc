#include "scaling/study.hh"

#include <algorithm>

#include "power/power.hh"
#include "util/logging.hh"

namespace ramp {
namespace scaling {

std::vector<NodeResult>
runScalingStudy(const workload::AppProfile &app, StudyParams params)
{
    const auto &nodes = technologyNodes();

    // Evaluate the workload's operating point at every node.
    std::vector<NodeResult> results;
    for (const auto &node : nodes) {
        core::EvalParams ep = params.eval;
        ep.power_params = nodePowerParams(node);
        ep.thermal_params = nodeThermalParams(node);
        const core::Evaluator evaluator(ep);

        NodeResult r;
        r.node = node;
        r.op = evaluator.evaluate(nodeMachine(node), app);
        results.push_back(std::move(r));
    }

    // Qualify at the oldest node's worst case: its hottest observed
    // block plus a margin, its activity, its EM current density.
    const NodeResult &oldest = results.front();
    core::QualificationSpec spec;
    spec.target_fit = params.target_fit;
    spec.t_qual_k = oldest.op.maxTemp() + params.t_qual_margin_k;
    spec.v_qual_v = 1.0;  // nominal-relative (see study.hh)
    spec.f_qual_ghz = 4.0; // neutral; EM carries em_j_scale instead
    spec.alpha_qual = oldest.op.activity.activity;
    spec.em_j_scale_qual = oldest.node.emCurrentScale();
    const core::Qualification qual(spec);

    // FIT of every node under the oldest node's qualification.
    for (auto &r : results) {
        sim::PerStructure<double> on;
        on.fill(1.0);
        r.fit = core::steadyFit(qual, on, r.op.temps_k,
                                r.op.activity.activity,
                                /*voltage=*/1.0, /*frequency=*/4.0,
                                r.node.emCurrentScale());
    }
    return results;
}

} // namespace scaling
} // namespace ramp
