#include "scaling/technology.hh"

#include <cmath>

#include "util/logging.hh"

namespace ramp {
namespace scaling {

double
TechNode::emCurrentScale() const
{
    // J ~ C V f / (W H). Switched capacitance follows the drawn
    // feature, but interconnect cross-sections historically shrank
    // slower (aspect ratios grew to contain resistance), so the wire
    // dimension is modelled as the square root of the feature scale:
    // J ~ V f / sqrt(feature).
    const double ref = 1.0 * 4.0 / std::sqrt(65.0); // 65 nm base
    return (vdd_v * frequency_ghz / std::sqrt(feature_nm)) / ref;
}

const std::vector<TechNode> &
technologyNodes()
{
    static const std::vector<TechNode> nodes = {
        // name, feature, Vdd, f, leakage density @383K
        {"180nm", 180.0, 1.8, 1.0, 0.02},
        {"130nm", 130.0, 1.5, 1.8, 0.08},
        {"90nm", 90.0, 1.2, 2.8, 0.25},
        {"65nm", 65.0, 1.0, 4.0, 0.50},
    };
    return nodes;
}

const TechNode &
findNode(const std::string &name)
{
    for (const auto &node : technologyNodes())
        if (node.name == name)
            return node;
    util::fatal(util::cat("unknown technology node '", name, "'"));
}

sim::MachineConfig
nodeMachine(const TechNode &node)
{
    sim::MachineConfig cfg = sim::baseMachine();
    cfg.frequency_ghz = node.frequency_ghz;
    cfg.voltage_v = node.vdd_v;
    return cfg;
}

power::PowerParams
nodePowerParams(const TechNode &node)
{
    power::PowerParams p;
    // Switched capacitance per structure scales with the feature
    // size; the V^2 f factors come from the machine configuration
    // against the unchanged 65 nm anchors (C V^2 f overall).
    for (auto &w : p.max_dynamic_w)
        w *= node.capacitanceScale();
    p.leakage_density_383 = node.leak_density_383;
    p.area_scale = node.areaScale();
    return p;
}

thermal::ThermalParams
nodeThermalParams(const TechNode &node)
{
    thermal::ThermalParams t;
    t.area_scale = node.areaScale();
    // Package spreading and convection resistances follow the
    // classic spreading-resistance law R ~ 1/sqrt(A): the big dies
    // of older nodes couple into the package over a larger footprint.
    const double linear = node.feature_nm / 65.0;
    t.r_spreader /= linear;
    t.r_convection /= linear;
    return t;
}

} // namespace scaling
} // namespace ramp
