/**
 * @file
 * The scaling study: one design, one workload, four technology
 * generations, one qualification.
 *
 * Methodology (mirroring the companion DSN 2004 paper): the part is
 * qualified for 4000 FIT at the *oldest* node's worst-case observed
 * conditions -- that is the reliability customers historically
 * expected -- and the same design rules (the solved proportionality
 * constants) are then carried to each newer node. Per node, the
 * study evaluates the workload's operating point (timing is
 * unchanged; power, leakage, die area, and therefore temperatures
 * move with the node) and reports the FIT/MTTF the old qualification
 * now yields.
 *
 * TDDB note: the Wu model's voltage acceleration is per oxide
 * generation; each node's nominal field is a design constant, so the
 * study evaluates TDDB at nominal-relative voltage (1.0) and the
 * cross-node TDDB degradation enters through temperature only --
 * conservative with respect to the DSN paper, which also charges
 * oxide thinning itself.
 */

#pragma once

#include <vector>

#include "core/engine.hh"
#include "core/evaluator.hh"
#include "scaling/technology.hh"
#include "workload/profile.hh"

namespace ramp {
namespace scaling {

/** Everything measured for one node. */
struct NodeResult
{
    TechNode node;
    core::OperatingPoint op;   ///< Workload at the node's V/f/tech.
    core::FitReport fit;       ///< Under the 180 nm qualification.

    double mttfYears() const { return fit.mttfYears(); }
};

/** Controls for the study. */
struct StudyParams
{
    core::EvalParams eval{};
    /** FIT target the oldest node is qualified to. */
    double target_fit = 4000.0;
    /** Margin added to the oldest node's hottest observed block to
     *  form T_qual (worst-case qualification practice). */
    double t_qual_margin_k = 5.0;
};

/**
 * Run the study for one application across all technology nodes.
 * Results are ordered oldest (180 nm) to newest (65 nm).
 */
std::vector<NodeResult> runScalingStudy(const workload::AppProfile &app,
                                        StudyParams params = {});

} // namespace scaling
} // namespace ramp

