/**
 * @file
 * Technology generations for the scaling study.
 *
 * The paper's Section 1.2 argues that scaling accelerates intrinsic
 * failures (thinner dielectrics, higher interconnect current density,
 * higher temperatures, more leakage); the authors quantify it in the
 * companion DSN 2004 paper ("The Impact of Scaling on Processor
 * Lifetime Reliability"). This module reproduces that study's shape:
 * the same microarchitecture is carried through four ITRS-flavoured
 * nodes (180 -> 130 -> 90 -> 65 nm) and evaluated under a single
 * qualification solved at the oldest node.
 *
 * Node parameters are representative published values: supply voltage
 * and clock follow the historical scaling trend; leakage density
 * grows steeply in the deep-submicron nodes; die area shrinks with
 * the square of the feature size; EM interconnect current density
 * scales as V*f*C/(W*H) ~ V*f/feature.
 */

#pragma once

#include <string>
#include <vector>

#include "power/power.hh"
#include "sim/machine.hh"
#include "thermal/model.hh"

namespace ramp {
namespace scaling {

/** One technology generation. */
struct TechNode
{
    std::string name;          ///< e.g. "180nm".
    double feature_nm;         ///< Drawn feature size.
    double vdd_v;              ///< Nominal supply.
    double frequency_ghz;      ///< Shipping clock for the design.
    double leak_density_383;   ///< Leakage density at 383 K, W/mm^2.

    /** Die area relative to the 65 nm reference layout. */
    double areaScale() const
    {
        const double s = feature_nm / 65.0;
        return s * s;
    }

    /** Switched capacitance per structure relative to 65 nm. */
    double capacitanceScale() const { return feature_nm / 65.0; }

    /**
     * EM interconnect current-density multiplier relative to the
     * 65 nm reference at its base operating point:
     * J ~ C*V*f/(W*H) ~ V*f/feature.
     */
    double emCurrentScale() const;
};

/** The four modelled generations, oldest (180 nm) first. */
const std::vector<TechNode> &technologyNodes();

/** Look up a node by name; fatal if unknown. */
const TechNode &findNode(const std::string &name);

/** The Table 1 machine operated at this node's V/f. */
sim::MachineConfig nodeMachine(const TechNode &node);

/**
 * Power-model constants for the node: switched capacitance scales
 * the per-structure maxima, leakage density and die area follow the
 * node, and the V^2 f scaling is re-anchored at the node's own
 * operating point (so activity-to-power stays calibrated).
 */
power::PowerParams nodePowerParams(const TechNode &node);

/** Thermal constants for the node (die area scale). */
thermal::ThermalParams nodeThermalParams(const TechNode &node);

} // namespace scaling
} // namespace ramp

