/**
 * @file
 * The cluster's shared retry policy: bounded attempts with
 * deterministic jittered exponential backoff.
 *
 * Both the router (re-resolving a request to the next healthy
 * backend) and ramp_client's --retries flag use this one class, so
 * "how a RAMP caller retries" has a single definition. The jitter is
 * a pure hash of (seed, operation key, retry ordinal) -- two runs
 * with the same seed sleep the same schedule, which keeps the fault
 * benches reproducible, while different operations still de-correlate
 * (no thundering herd against a recovering backend).
 */

#pragma once

#include <cstdint>

#include "util/error.hh"

namespace ramp {
namespace route {

/** Bounded jittered-backoff retry schedule. */
struct RetryPolicy
{
    /** Re-attempts after the first try (0 = no retry). */
    int retries = 2;
    /** Base delay before the first retry; doubles per retry. */
    int backoff_ms = 50;
    /** Ceiling for the doubled base delay. */
    int backoff_max_ms = 2'000;
    /** Jitter seed (reuse the fault seed for reproducible runs). */
    std::uint64_t seed = 1;

    /** Total tries including the first. */
    int attempts() const { return retries + 1; }

    /**
     * Sleep before retry @p retry (1-based) of the operation hashed
     * as @p op_key. Deterministic: in [base/2, base] where base is
     * backoff_ms doubled per retry and capped at backoff_max_ms.
     */
    [[nodiscard]] int delayMs(std::uint64_t op_key, int retry) const;

    /**
     * True for errors worth re-trying against another replica (or
     * the same one later): transport faults and explicit backpressure
     * -- Timeout, IoFailure, Overloaded, Unavailable. Evaluation and
     * validation errors are deterministic and never retried.
     */
    [[nodiscard]] static bool transient(util::ErrorCode code);
};

} // namespace route
} // namespace ramp
