#include "route/ring.hh"

#include <algorithm>
#include <string>

#include "util/logging.hh"

namespace ramp {
namespace route {

namespace {

constexpr std::uint64_t fnv_offset = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnv_prime = 0x100000001b3ull;

/** Murmur3's 64-bit finalizer. FNV-1a of short, similar strings
 *  ("backend-0#1", "backend-0#2", ...) varies mostly in its low
 *  bits, but ring position is dominated by the high bits -- without
 *  this avalanche the vnode points cluster and the arcs (and so the
 *  key load) end up wildly uneven. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = fnv_offset;
    for (unsigned char c : s) {
        h ^= c;
        h *= fnv_prime;
    }
    return mix64(h);
}

} // namespace

HashRing::HashRing(std::size_t backends, std::size_t vnodes)
    : backends_(backends)
{
    ring_.reserve(backends * vnodes);
    for (std::size_t b = 0; b < backends; ++b) {
        for (std::size_t v = 0; v < vnodes; ++v) {
            const std::string label = util::cat("backend-", b, "#", v);
            ring_.push_back(Vnode{fnv1a(label), b});
        }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const Vnode &a, const Vnode &b) {
                  if (a.hash != b.hash)
                      return a.hash < b.hash;
                  return a.backend < b.backend;
              });
}

std::uint64_t
HashRing::hashKey(std::string_view key)
{
    return fnv1a(key);
}

std::optional<std::size_t>
HashRing::pick(std::string_view key,
               const std::function<bool(std::size_t)> &usable) const
{
    if (ring_.empty())
        return std::nullopt;
    const std::uint64_t h = fnv1a(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Vnode &v, std::uint64_t x) { return v.hash < x; });
    // Walk clockwise; visit each distinct backend once.
    std::vector<bool> seen(backends_, false);
    std::size_t distinct = 0;
    for (std::size_t step = 0;
         step < ring_.size() && distinct < backends_; ++step) {
        if (it == ring_.end())
            it = ring_.begin();
        const std::size_t b = it->backend;
        ++it;
        if (seen[b])
            continue;
        seen[b] = true;
        ++distinct;
        if (usable(b))
            return b;
    }
    return std::nullopt;
}

std::optional<std::size_t>
HashRing::pick(std::string_view key) const
{
    return pick(key, [](std::size_t) { return true; });
}

} // namespace route
} // namespace ramp
