/**
 * @file
 * ramp_routed's core: a fault-tolerant sharding front tier over N
 * ramp_served backends.
 *
 * The router speaks the serving protocol on both sides. Client
 * frames are parsed only to classify and route them; the frame that
 * reaches the chosen backend is the client's *original payload*, and
 * the reply written back is the backend's reply payload, both
 * verbatim -- so a routed reply is byte-identical to a direct call
 * by construction, not by re-encoding.
 *
 * Placement is a consistent-hash ring (route/ring.hh) over the
 * request's shard key: `chip` for the v2 fleet verbs (a chip's aging
 * registry lives on exactly one backend), (app, space, config) for
 * evaluate, and (app, space) for selections, so repeat requests hit
 * the same backend's caches. Stats, hello, and shutdown are answered
 * by the router itself; cache_append is the backends' replication
 * verb and is rejected as a bad request when a client sends it.
 *
 * Fault tolerance is three cooperating pieces:
 *
 *  - A health table (route/health.hh) fed by a periodic stats-probe
 *    thread and by passive observation of forwarding failures.
 *  - Bounded retry with deterministic jittered backoff
 *    (route/retry.hh): a transport failure marks the backend,
 *    re-resolves the key to the next usable replica (ring walk,
 *    excluding backends already tried this request), and re-sends.
 *  - Explicit structured failure: when every replica is down or the
 *    retry budget is spent, the client gets an err_no_backend error
 *    reply -- the router never converts a dead backend into a hang.
 *
 * Threading: one acceptor, one reader thread per client connection
 * (which also owns that connection's pool of backend sockets -- no
 * cross-thread sharing), one probe thread.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "route/health.hh"
#include "route/retry.hh"
#include "route/ring.hh"
#include "serve/protocol.hh"
#include "util/json.hh"
#include "util/net.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace route {

/** Routing knobs. */
struct RouterOptions
{
    /** Listen port; 0 = kernel-assigned (see Router::port()). */
    std::uint16_t port = 0;
    /** Backend ramp_served ports, in shard order. */
    std::vector<std::uint16_t> backends;
    /** Virtual points per backend on the ring. */
    std::size_t vnodes = 64;
    /** Consecutive failures before a backend is Down. */
    int fail_threshold = 2;
    /** Health-probe period (one stats round trip per backend). */
    int probe_interval_ms = 250;
    /** Retry schedule for forwarding failures. */
    RetryPolicy retry{};
    /** Per-frame payload cap, both sides. */
    std::size_t max_frame_bytes = serve::default_max_frame;
    /** Reader wait for the next client frame. */
    int idle_timeout_ms = 30'000;
    /** Deadline for one backend round trip leg (write or read). */
    int io_timeout_ms = 5'000;
    /** Deadline for one backend connect. */
    int connect_timeout_ms = 1'000;
};

/** The routing daemon. start() .. stop() brackets a lifetime. */
class Router
{
  public:
    explicit Router(RouterOptions opts);

    /** Stops (draining) if still running. */
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** Bind, listen, and spawn the acceptor + probe thread. */
    [[nodiscard]] util::Result<void> start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** True once a drain has begun. */
    bool draining() const
    {
        return draining_.load(std::memory_order_acquire);
    }

    /** Begin graceful drain (idempotent, non-blocking). */
    void requestDrain();

    /** Block until the drain completes and all threads are joined. */
    void wait();

    /** requestDrain() + wait(). Safe to call repeatedly. */
    void stop();

    /** Health table (tests and the bench assert transitions). */
    const HealthTable &health() const { return health_; }

    /** The placement ring (the bench predicts shard homes with it). */
    const HashRing &ring() const { return ring_; }

    /**
     * The shard key a request routes by: "chip|<chip>" for the v2
     * fleet verbs, "pt|app|space|config" for evaluate,
     * "sel|app|space" for selections. Exposed so the bench and tests
     * can predict placement without a router instance.
     */
    static std::string routeKey(const serve::Request &req);

    /** Router counters + per-backend health (stats replies). */
    util::JsonValue statsJson() const;

  private:
    /** One accepted client connection. Its reader thread owns the
     *  backend socket pool, so no per-connection locking. */
    struct Connection
    {
        util::Socket sock;
        std::thread thread;
        std::atomic<bool> done{false}; ///< Reader exited (reapable).
    };

    /** The reader thread's cached backend connections. */
    using BackendLinks = std::map<std::size_t, util::Socket>;

    void acceptLoop();
    void clientLoop(const std::shared_ptr<Connection> &conn);
    void probeLoop();

    /** Answer one parsed request: inline verbs locally, everything
     *  else through the forwarding path. Returns the reply payload. */
    std::string handleRequest(const serve::Request &req,
                              const std::string &payload,
                              BackendLinks &links);

    /** The retry loop: resolve, forward, observe, re-resolve. */
    std::string forward(const serve::Request &req,
                        const std::string &payload,
                        BackendLinks &links);

    /** One send/receive against backend @p b (connects on demand,
     *  consulting fault::refuseConnect). Transport errors only; a
     *  structured error reply from the backend is a success here. */
    [[nodiscard]] util::Result<std::string>
    forwardOnce(BackendLinks &links, std::size_t b,
                const std::string &payload);

    /** Drain-aware sleep (returns early when draining begins). */
    void sleepFor(int ms);

    RouterOptions opts_;
    HashRing ring_;
    HealthTable health_;

    util::Listener listener_;
    std::uint16_t port_ = 0;
    std::thread acceptor_;
    std::thread prober_;
    std::atomic<bool> started_{false};
    std::atomic<bool> draining_{false};

    mutable std::mutex conns_mu_;
    // ramp-lint: guarded_by(conns_mu_)
    std::vector<std::shared_ptr<Connection>> conns_;

    std::mutex stop_mu_;
    std::condition_variable stop_cv_;

    std::mutex done_mu_;
    // ramp-lint: guarded_by(done_mu_): joined_
    bool joined_ = false;

    /** Monotonic connect-attempt ordinals per backend (the
     *  deterministic conn-refuse fault key). */
    std::unique_ptr<std::atomic<std::uint64_t>[]> attempts_;

    telemetry::Counter connections_ =
        telemetry::counter("route.connections");
    telemetry::Counter requests_ =
        telemetry::counter("route.requests");
    telemetry::Counter forwarded_ =
        telemetry::counter("route.forwarded");
    telemetry::Counter retries_ = telemetry::counter("route.retries");
    telemetry::Counter failovers_ =
        telemetry::counter("route.failovers");
    telemetry::Counter no_backend_ =
        telemetry::counter("route.no_backend");
    telemetry::Counter bad_requests_ =
        telemetry::counter("route.bad_requests");
    telemetry::Counter probes_ = telemetry::counter("route.probes");
    telemetry::Counter probe_failures_ =
        telemetry::counter("route.probe_failures");

    /** Plain tallies mirrored into statsJson(). */
    std::atomic<std::uint64_t> n_connections_{0};
    std::atomic<std::uint64_t> n_requests_{0};
    std::atomic<std::uint64_t> n_forwarded_{0};
    std::atomic<std::uint64_t> n_retries_{0};
    std::atomic<std::uint64_t> n_failovers_{0};
    std::atomic<std::uint64_t> n_no_backend_{0};
    std::atomic<std::uint64_t> n_bad_requests_{0};
    std::atomic<std::uint64_t> n_probes_{0};
    std::atomic<std::uint64_t> n_probe_failures_{0};
};

} // namespace route
} // namespace ramp
