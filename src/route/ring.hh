/**
 * @file
 * Consistent-hash ring over the cluster's backends.
 *
 * Each backend contributes `vnodes` virtual points (FNV-1a of
 * "backend-<i>#<v>") on a 64-bit ring; a request key resolves to the
 * first virtual point clockwise from its own hash. Two properties
 * matter to the router:
 *
 *  - Stability: the mapping depends only on (backend count, vnode
 *    count, key), never on request order or health history, so every
 *    router instance -- and the bench's oracle -- agrees on where a
 *    key lives.
 *  - Graceful exclusion: pick() walks clockwise past points whose
 *    backend the caller's predicate rejects (down, or already tried
 *    this request), so losing a backend only remaps the keys that
 *    lived on it.
 *
 * The ring is immutable after construction; membership changes mean
 * building a new ring (the router's backend set is fixed at start).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

namespace ramp {
namespace route {

/** Immutable consistent-hash ring over backend indices [0, n). */
class HashRing
{
  public:
    HashRing() = default;

    /** @param backends Backend count.
     *  @param vnodes Virtual points per backend. */
    explicit HashRing(std::size_t backends, std::size_t vnodes = 64);

    /** The backend count the ring was built over. */
    std::size_t backends() const { return backends_; }

    /** The 64-bit FNV-1a the ring uses for keys (exposed so tests
     *  and the bench can predict placements). */
    static std::uint64_t hashKey(std::string_view key);

    /**
     * The first backend clockwise from @p key whose index @p usable
     * accepts. Walks each distinct backend at most once, in ring
     * order. nullopt when the ring is empty or every backend is
     * rejected.
     */
    [[nodiscard]] std::optional<std::size_t>
    pick(std::string_view key,
         const std::function<bool(std::size_t)> &usable) const;

    /** pick() accepting every backend (primary placement). */
    [[nodiscard]] std::optional<std::size_t>
    pick(std::string_view key) const;

  private:
    struct Vnode
    {
        std::uint64_t hash = 0;
        std::size_t backend = 0;
    };

    std::vector<Vnode> ring_; ///< Sorted by hash.
    std::size_t backends_ = 0;
};

} // namespace route
} // namespace ramp
