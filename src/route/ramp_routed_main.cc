/**
 * @file
 * The RAMP routing daemon: a fault-tolerant sharding front tier over
 * N ramp_served backends (see route/router.hh). Listens on loopback,
 * speaks the serving protocol to clients, consistent-hashes requests
 * across the backends with health-checked retry and failover, and
 * drains gracefully on SIGTERM / SIGINT or a client shutdown
 * request.
 *
 * The bound port is printed to stdout (and optionally a --port-file)
 * so scripts can use an ephemeral port without racing the daemon.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hh"
#include "route/router.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

void
usage(const char *prog, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s --backends P1,P2,... [options]\n"
        "  --backends LIST     comma-separated backend ports\n"
        "                      (required)\n"
        "  --port N            listen port (default 0 = ephemeral)\n"
        "  --port-file PATH    write the bound port to PATH\n"
        "  --probe-interval-ms N  health-probe period (default "
        "250)\n"
        "  --fail-threshold N  consecutive failures before a\n"
        "                      backend is down (default 2)\n"
        "  --retries N         forwarding re-attempts (default 2)\n"
        "  --backoff-ms N      base retry backoff (default 50)\n"
        "  --idle-timeout-ms N disconnect idle clients (default "
        "30000)\n"
        "  --io-timeout-ms N   backend round-trip leg deadline\n"
        "                      (default 5000)\n"
        "  --metrics PATH      telemetry snapshot at exit\n"
        "  --fault-plan P      fault plan (inline JSON or file)\n"
        "  --fault-seed N      override the plan's seed\n"
        "  --help              show this message and exit\n",
        prog);
}

[[noreturn]] void
badFlag(const char *prog, const std::string &why)
{
    usage(prog, stderr);
    ramp::util::fatal(why);
}

std::uint64_t
parseCount(const char *prog, const std::string &flag,
           const std::string &value)
{
    char *end = nullptr;
    const unsigned long long n =
        std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0')
        badFlag(prog, ramp::util::cat(flag,
                                      " needs an integer, got '",
                                      value, "'"));
    return n;
}

std::vector<std::uint16_t>
parsePorts(const char *prog, const std::string &flag,
           const std::string &value)
{
    std::vector<std::uint16_t> ports;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        const std::string item = value.substr(start, comma - start);
        if (item.empty())
            badFlag(prog, ramp::util::cat(flag,
                                          " has an empty entry in '",
                                          value, "'"));
        ports.push_back(static_cast<std::uint16_t>(
            parseCount(prog, flag, item)));
        start = comma + 1;
    }
    return ports;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ramp;

    route::RouterOptions opts;
    std::string port_file;
    std::string metrics_path;
    std::string fault_plan;
    std::uint64_t fault_seed = 0;

    const char *prog = argc > 0 ? argv[0] : "ramp_routed";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(prog, stdout);
            return 0;
        }
        if (i + 1 >= argc)
            badFlag(prog, util::cat(arg, " needs a value"));
        const std::string value = argv[++i];
        if (arg == "--backends")
            opts.backends = parsePorts(prog, arg, value);
        else if (arg == "--port")
            opts.port = static_cast<std::uint16_t>(
                parseCount(prog, arg, value));
        else if (arg == "--port-file")
            port_file = value;
        else if (arg == "--probe-interval-ms")
            opts.probe_interval_ms = static_cast<int>(
                parseCount(prog, arg, value));
        else if (arg == "--fail-threshold")
            opts.fail_threshold = static_cast<int>(
                parseCount(prog, arg, value));
        else if (arg == "--retries")
            opts.retry.retries = static_cast<int>(
                parseCount(prog, arg, value));
        else if (arg == "--backoff-ms")
            opts.retry.backoff_ms = static_cast<int>(
                parseCount(prog, arg, value));
        else if (arg == "--idle-timeout-ms")
            opts.idle_timeout_ms = static_cast<int>(
                parseCount(prog, arg, value));
        else if (arg == "--io-timeout-ms")
            opts.io_timeout_ms = static_cast<int>(
                parseCount(prog, arg, value));
        else if (arg == "--metrics")
            metrics_path = value;
        else if (arg == "--fault-plan")
            fault_plan = value;
        else if (arg == "--fault-seed")
            fault_seed = parseCount(prog, arg, value);
        else
            badFlag(prog,
                    util::cat("unknown argument '", arg,
                              "' (see --help)"));
    }

    if (opts.backends.empty())
        badFlag(prog, "--backends is required");
    if (!metrics_path.empty())
        telemetry::writeFilesAtExit(metrics_path, "");
    if (fault_seed != 0 && fault_plan.empty())
        util::fatal("--fault-seed requires --fault-plan");
    if (!fault_plan.empty()) {
        auto plan = fault::loadFaultPlan(fault_plan);
        if (!plan)
            util::fatal(
                util::cat("--fault-plan: ", plan.error().str()));
        if (fault_seed != 0)
            plan.value().seed = fault_seed;
        fault::installFaultPlan(plan.value());
        opts.retry.seed = plan.value().seed;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    // A backend dying mid-write must surface as a write error, not
    // kill the router.
    std::signal(SIGPIPE, SIG_IGN);

    route::Router router(opts);
    if (auto started = router.start(); !started)
        util::fatal(util::cat("ramp_routed: ",
                              started.error().str()));

    std::fprintf(stdout, "ramp_routed: listening on 127.0.0.1:%u\n",
                 router.port());
    std::fflush(stdout);
    if (!port_file.empty()) {
        // Written after listen() succeeds, so a watcher that sees the
        // file can connect immediately.
        std::ofstream out(port_file);
        out << router.port() << "\n";
        if (!out)
            util::fatal(util::cat("cannot write --port-file ",
                                  port_file));
    }

    while (g_signal == 0 && !router.draining())
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));

    std::fprintf(stderr, "ramp_routed: draining (%s)\n",
                 g_signal ? "signal" : "shutdown request");
    router.stop();
    return 0;
}
