#include "route/retry.hh"

#include <algorithm>

namespace ramp {
namespace route {

namespace {

/** splitmix64 finalizer: a cheap, well-mixed pure hash. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

int
RetryPolicy::delayMs(std::uint64_t op_key, int retry) const
{
    if (backoff_ms <= 0 || retry <= 0)
        return 0;
    // Double per retry without overflowing: cap the shift first.
    const int doublings = std::min(retry - 1, 20);
    const std::int64_t raw = static_cast<std::int64_t>(backoff_ms)
                             << doublings;
    const int base = static_cast<int>(std::min<std::int64_t>(
        raw, std::max(backoff_max_ms, backoff_ms)));
    const int half = base / 2;
    const std::uint64_t h =
        mix(seed ^ mix(op_key ^
                       (static_cast<std::uint64_t>(retry) << 48)));
    const int span = base - half;
    return half + static_cast<int>(
                      h % static_cast<std::uint64_t>(span + 1));
}

bool
RetryPolicy::transient(util::ErrorCode code)
{
    switch (code) {
    case util::ErrorCode::Timeout:
    case util::ErrorCode::IoFailure:
    case util::ErrorCode::Overloaded:
    case util::ErrorCode::Unavailable:
        return true;
    default:
        return false;
    }
}

} // namespace route
} // namespace ramp
