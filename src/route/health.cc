#include "route/health.hh"

#include "util/logging.hh"

namespace ramp {
namespace route {

using util::JsonValue;

const char *
healthStateName(HealthState s)
{
    switch (s) {
    case HealthState::Healthy:
        return "healthy";
    case HealthState::Suspect:
        return "suspect";
    case HealthState::Down:
        return "down";
    }
    return "unknown";
}

HealthTable::HealthTable(std::size_t backends, int fail_threshold)
    : size_(backends), fail_threshold_(fail_threshold),
      entries_(backends)
{
    healthy_gauge_.set(static_cast<double>(backends));
}

HealthState
HealthTable::state(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.at(i).state;
}

bool
HealthTable::usable(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.at(i).state != HealthState::Down;
}

void
HealthTable::observeSuccess(std::size_t i)
{
    std::size_t usable_now = 0;
    bool recovered = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        Entry &e = entries_.at(i);
        e.consecutive_failures = 0;
        if (e.state != HealthState::Healthy) {
            e.state = HealthState::Healthy;
            ++ups_;
            recovered = true;
        }
        for (const Entry &x : entries_)
            if (x.state != HealthState::Down)
                ++usable_now;
    }
    if (recovered) {
        up_counter_.add();
        healthy_gauge_.set(static_cast<double>(usable_now));
    }
}

void
HealthTable::observeFailure(std::size_t i)
{
    std::size_t usable_now = 0;
    bool went_down = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        Entry &e = entries_.at(i);
        ++e.consecutive_failures;
        if (e.state == HealthState::Healthy)
            e.state = HealthState::Suspect;
        if (e.state == HealthState::Suspect &&
            e.consecutive_failures >= fail_threshold_) {
            e.state = HealthState::Down;
            ++downs_;
            went_down = true;
        }
        for (const Entry &x : entries_)
            if (x.state != HealthState::Down)
                ++usable_now;
    }
    if (went_down) {
        down_counter_.add();
        healthy_gauge_.set(static_cast<double>(usable_now));
    }
}

std::size_t
HealthTable::usableCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const Entry &e : entries_)
        if (e.state != HealthState::Down)
            ++n;
    return n;
}

std::uint64_t
HealthTable::transitionsUp() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return ups_;
}

std::uint64_t
HealthTable::transitionsDown() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return downs_;
}

JsonValue
HealthTable::toJson() const
{
    std::lock_guard<std::mutex> lk(mu_);
    JsonValue out = JsonValue::makeArray();
    for (const Entry &e : entries_) {
        JsonValue o = JsonValue::makeObject();
        o.set("state",
              JsonValue::makeString(healthStateName(e.state)));
        o.set("consecutive_failures",
              JsonValue::makeNumber(
                  static_cast<double>(e.consecutive_failures)));
        out.push(std::move(o));
    }
    return out;
}

} // namespace route
} // namespace ramp
