#include "route/router.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "fault/fault.hh"
#include "serve/client.hh"
#include "util/logging.hh"

namespace ramp {
namespace route {

using serve::Request;
using serve::RequestType;
using util::ErrorCode;
using util::JsonValue;
using util::RampError;
using util::Result;

namespace {

std::uint64_t
load(const std::atomic<std::uint64_t> &v)
{
    return v.load(std::memory_order_relaxed);
}

} // namespace

Router::Router(RouterOptions opts)
    : opts_(std::move(opts)),
      ring_(opts_.backends.size(), opts_.vnodes),
      health_(opts_.backends.size(), opts_.fail_threshold),
      attempts_(std::make_unique<std::atomic<std::uint64_t>[]>(
          opts_.backends.size()))
{
    for (std::size_t b = 0; b < opts_.backends.size(); ++b)
        attempts_[b].store(0, std::memory_order_relaxed);
}

Router::~Router()
{
    stop();
}

Result<void>
Router::start()
{
    if (opts_.backends.empty())
        return RampError{ErrorCode::InvalidInput,
                         "router needs at least one backend"};
    auto listener = util::listenTcp(opts_.port);
    if (!listener)
        return listener.error();
    listener_ = std::move(listener.value());
    port_ = listener_.port;
    started_.store(true, std::memory_order_release);
    acceptor_ = std::thread([this] { acceptLoop(); });
    prober_ = std::thread([this] { probeLoop(); });
    return {};
}

void
Router::requestDrain()
{
    {
        std::lock_guard<std::mutex> lk(stop_mu_);
        draining_.store(true, std::memory_order_release);
    }
    stop_cv_.notify_all();
}

void
Router::wait()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lk(done_mu_);
    if (joined_)
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    if (prober_.joinable())
        prober_.join();
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> cl(conns_mu_);
        conns.swap(conns_);
    }
    // Half-close every client connection so parked readers wake.
    for (auto &conn : conns)
        conn->sock.shutdownBoth();
    for (auto &conn : conns)
        if (conn->thread.joinable())
            conn->thread.join();
    joined_ = true;
}

void
Router::stop()
{
    if (!started_.load(std::memory_order_acquire))
        return;
    requestDrain();
    wait();
}

void
Router::sleepFor(int ms)
{
    if (ms <= 0)
        return;
    std::unique_lock<std::mutex> lk(stop_mu_);
    stop_cv_.wait_for(lk, std::chrono::milliseconds(ms), [this] {
        return draining_.load(std::memory_order_acquire);
    });
}

void
Router::acceptLoop()
{
    while (!draining()) {
        auto accepted = util::acceptTcp(listener_.socket, 200);
        // Reap finished readers so the connection table tracks live
        // peers, not history.
        {
            std::lock_guard<std::mutex> lk(conns_mu_);
            for (auto &conn : conns_) {
                if (conn->done.load(std::memory_order_acquire) &&
                    conn->thread.joinable())
                    conn->thread.join();
            }
            conns_.erase(
                std::remove_if(
                    conns_.begin(), conns_.end(),
                    [](const std::shared_ptr<Connection> &c) {
                        return c->done.load(
                            std::memory_order_acquire);
                    }),
                conns_.end());
        }
        if (!accepted)
            continue; // Timeout poll or transient accept error.
        connections_.add();
        n_connections_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_shared<Connection>();
        conn->sock = std::move(accepted.value());
        {
            std::lock_guard<std::mutex> lk(conns_mu_);
            conns_.push_back(conn);
        }
        conn->thread =
            std::thread([this, conn] { clientLoop(conn); });
    }
}

void
Router::clientLoop(const std::shared_ptr<Connection> &conn)
{
    BackendLinks links;
    while (!draining()) {
        auto frame = util::readFrame(conn->sock, opts_.max_frame_bytes,
                                     opts_.idle_timeout_ms);
        if (!frame || !frame.value().has_value())
            break; // Idle timeout, torn stream, or clean close.
        const std::string &payload = *frame.value();
        requests_.add();
        n_requests_.fetch_add(1, std::memory_order_relaxed);

        std::string reply;
        auto parsed = serve::parseRequest(payload);
        if (!parsed) {
            bad_requests_.add();
            n_bad_requests_.fetch_add(1, std::memory_order_relaxed);
            reply = serve::encodeErrorReply(
                0, serve::err_bad_request,
                parsed.error().message, 0);
        } else {
            reply = handleRequest(parsed.value(), payload, links);
        }
        if (auto written =
                util::writeFrame(conn->sock, reply,
                                 opts_.max_frame_bytes,
                                 opts_.io_timeout_ms);
            !written)
            break;
    }
    conn->sock.shutdownBoth();
    conn->done.store(true, std::memory_order_release);
}

std::string
Router::handleRequest(const Request &req, const std::string &payload,
                      BackendLinks &links)
{
    switch (req.type) {
      case RequestType::Stats: {
        // The router answers stats itself: callers asking the tier
        // for its state want routing health, not one shard's queue.
        return serve::encodeResultReply(req.id, statsJson(),
                                        req.version);
      }
      case RequestType::Hello: {
        JsonValue result = JsonValue::makeObject();
        result.set("v_min", JsonValue::makeNumber(
                                serve::protocol_version_min));
        result.set("v_max", JsonValue::makeNumber(
                                serve::protocol_version_max));
        result.set("negotiated_v",
                   JsonValue::makeNumber(
                       std::min(req.max_v,
                                serve::protocol_version_max)));
        return serve::encodeResultReply(req.id, std::move(result),
                                        req.version);
      }
      case RequestType::Shutdown: {
        requestDrain();
        JsonValue result = JsonValue::makeObject();
        result.set("draining", JsonValue::makeBool(true));
        return serve::encodeResultReply(req.id, std::move(result),
                                        req.version);
      }
      case RequestType::CacheAppend: {
        bad_requests_.add();
        n_bad_requests_.fetch_add(1, std::memory_order_relaxed);
        return serve::encodeErrorReply(
            req.id, serve::err_bad_request,
            "cache_append is the backends' replication verb; the "
            "router does not accept it from clients",
            req.version);
      }
      case RequestType::Evaluate:
      case RequestType::SelectDrm:
      case RequestType::SelectDtm:
      case RequestType::SelectChip:
      case RequestType::ReportUsage:
      case RequestType::RemainingLifetime:
        break;
    }

    if (draining())
        return serve::encodeErrorReply(req.id,
                                       serve::err_shutting_down,
                                       "router is draining",
                                       req.version);
    return forward(req, payload, links);
}

std::string
Router::routeKey(const Request &req)
{
    switch (req.type) {
    case RequestType::ReportUsage:
    case RequestType::RemainingLifetime:
        return util::cat("chip|", req.chip);
    case RequestType::Evaluate:
        return util::cat("pt|", req.app, "|",
                         static_cast<int>(req.space), "|",
                         req.config);
    case RequestType::SelectChip: {
        // Key on the whole app mix so identical chips stick to one
        // backend's explored-space memos.
        std::string mix;
        for (const auto &app : req.core_apps)
            mix += app + ",";
        return util::cat("chip-sel|", mix,
                         static_cast<int>(req.space));
    }
    default:
        return util::cat("sel|", req.app, "|",
                         static_cast<int>(req.space));
    }
}

std::string
Router::forward(const Request &req, const std::string &payload,
                BackendLinks &links)
{
    const std::string key = routeKey(req);
    const std::uint64_t op = HashRing::hashKey(key);
    const std::size_t n = opts_.backends.size();
    std::vector<char> tried(n, 0);
    std::size_t prev = n; // No previous attempt yet.

    for (int attempt = 0; attempt < opts_.retry.attempts();
         ++attempt) {
        if (attempt > 0) {
            retries_.add();
            n_retries_.fetch_add(1, std::memory_order_relaxed);
            sleepFor(opts_.retry.delayMs(op, attempt));
            if (draining())
                return serve::encodeErrorReply(
                    req.id, serve::err_shutting_down,
                    "router is draining", req.version);
        }
        auto pick = ring_.pick(key, [&](std::size_t b) {
            return health_.usable(b) && !tried[b];
        });
        if (!pick) {
            // Every usable backend was already tried this request:
            // widen to re-tries (a Suspect backend may have
            // recovered between attempts).
            std::fill(tried.begin(), tried.end(), 0);
            pick = ring_.pick(key, [&](std::size_t b) {
                return health_.usable(b);
            });
        }
        if (!pick)
            break; // Every backend is Down.
        const std::size_t b = *pick;
        tried[b] = 1;
        if (prev != n && b != prev) {
            failovers_.add();
            n_failovers_.fetch_add(1, std::memory_order_relaxed);
        }
        prev = b;

        auto fwd = forwardOnce(links, b, payload);
        if (fwd) {
            health_.observeSuccess(b);
            forwarded_.add();
            n_forwarded_.fetch_add(1, std::memory_order_relaxed);
            return std::move(fwd.value());
        }
        // Passive health evidence: the probe thread would take a
        // full interval to notice what forwarding just did.
        health_.observeFailure(b);
        links.erase(b);
    }

    no_backend_.add();
    n_no_backend_.fetch_add(1, std::memory_order_relaxed);
    return serve::encodeErrorReply(
        req.id, serve::err_no_backend,
        util::cat("no healthy backend for shard key '", key,
                  "' after ", opts_.retry.attempts(), " attempts"),
        req.version);
}

Result<std::string>
Router::forwardOnce(BackendLinks &links, std::size_t b,
                    const std::string &payload)
{
    auto it = links.find(b);
    if (it == links.end()) {
        const std::uint16_t port = opts_.backends[b];
        const std::uint64_t attempt_no =
            attempts_[b].fetch_add(1, std::memory_order_relaxed) + 1;
        if (const fault::FaultPlan *plan = fault::activeFaultPlan();
            plan && fault::refuseConnect(*plan, port, attempt_no))
            return RampError{ErrorCode::Unavailable,
                             util::cat("connect to backend :", port,
                                       " refused (fault plan)")};
        auto sock = util::connectTcp(port, opts_.connect_timeout_ms);
        if (!sock)
            return sock.error();
        it = links.emplace(b, std::move(sock.value())).first;
    }
    auto written =
        util::writeFrame(it->second, payload, opts_.max_frame_bytes,
                         opts_.io_timeout_ms);
    if (!written)
        return written.error();
    auto frame = util::readFrame(it->second, opts_.max_frame_bytes,
                                 opts_.io_timeout_ms);
    if (!frame)
        return frame.error();
    if (!frame.value().has_value())
        return RampError{ErrorCode::IoFailure,
                         "backend closed mid-request"};
    return std::move(*frame.value());
}

void
Router::probeLoop()
{
    while (!draining()) {
        for (std::size_t b = 0; b < opts_.backends.size(); ++b) {
            if (draining())
                break;
            probes_.add();
            n_probes_.fetch_add(1, std::memory_order_relaxed);
            const std::uint16_t port = opts_.backends[b];
            bool ok = false;
            const std::uint64_t attempt_no =
                attempts_[b].fetch_add(1,
                                       std::memory_order_relaxed) +
                1;
            const fault::FaultPlan *plan = fault::activeFaultPlan();
            if (!(plan &&
                  fault::refuseConnect(*plan, port, attempt_no))) {
                serve::ClientOptions copts;
                copts.port = port;
                copts.connect_timeout_ms = opts_.connect_timeout_ms;
                copts.io_timeout_ms = opts_.io_timeout_ms;
                auto client = serve::Client::connect(copts);
                if (client) {
                    auto stats = client.value().stats();
                    ok = stats.ok();
                }
            }
            if (ok) {
                health_.observeSuccess(b);
            } else {
                probe_failures_.add();
                n_probe_failures_.fetch_add(
                    1, std::memory_order_relaxed);
                health_.observeFailure(b);
            }
        }
        sleepFor(opts_.probe_interval_ms);
    }
}

JsonValue
Router::statsJson() const
{
    JsonValue out = JsonValue::makeObject();
    out.set("router", JsonValue::makeBool(true));
    out.set("backends_total",
            JsonValue::makeNumber(
                static_cast<double>(opts_.backends.size())));
    out.set("backends_usable",
            JsonValue::makeNumber(
                static_cast<double>(health_.usableCount())));
    auto num = [](std::uint64_t v) {
        return JsonValue::makeNumber(static_cast<double>(v));
    };
    out.set("connections", num(load(n_connections_)));
    out.set("requests", num(load(n_requests_)));
    out.set("forwarded", num(load(n_forwarded_)));
    out.set("retries", num(load(n_retries_)));
    out.set("failovers", num(load(n_failovers_)));
    out.set("no_backend", num(load(n_no_backend_)));
    out.set("bad_requests", num(load(n_bad_requests_)));
    out.set("probes", num(load(n_probes_)));
    out.set("probe_failures", num(load(n_probe_failures_)));
    out.set("health_up", num(health_.transitionsUp()));
    out.set("health_down", num(health_.transitionsDown()));
    JsonValue backends = health_.toJson();
    for (std::size_t b = 0;
         b < backends.array.size() && b < opts_.backends.size(); ++b)
        backends.array[b].set(
            "port", JsonValue::makeNumber(static_cast<double>(
                        opts_.backends[b])));
    out.set("backends", std::move(backends));
    out.set("draining", JsonValue::makeBool(draining()));
    return out;
}

} // namespace route
} // namespace ramp
