/**
 * @file
 * Per-backend health state for the router.
 *
 * Three states per backend, driven by two evidence streams -- the
 * probe thread's periodic stats round trips and passive observation
 * of forwarding failures:
 *
 *   Healthy --failure--> Suspect --N consecutive--> Down
 *      ^                    |                         |
 *      +----- success ------+------- success --------+
 *
 * Suspect backends stay routable (one failure is usually a blip --
 * taking a shard out of rotation on a single timeout would turn
 * every transient into a full remap); only Down backends are skipped
 * by the ring walk. Any success snaps the backend straight back to
 * Healthy -- the daemon either answers frames or it does not, so
 * there is no need for a sticky half-open probation.
 *
 * Transitions are counted (route.health_up / route.health_down) and
 * the healthy population is exported as a gauge, so a bench can
 * assert it *saw* the kill and the recovery, not just that the run
 * passed.
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/json.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace route {

/** One backend's health classification. */
enum class HealthState : std::uint8_t {
    Healthy, ///< Answering; preferred placement.
    Suspect, ///< Recent failure; still routable.
    Down,    ///< fail_threshold consecutive failures; skipped.
};

/** "healthy" / "suspect" / "down". */
const char *healthStateName(HealthState s);

/** Thread-safe health table over backend indices [0, n). */
class HealthTable
{
  public:
    /** @param backends Backend count.
     *  @param fail_threshold Consecutive failures before Down. */
    explicit HealthTable(std::size_t backends,
                         int fail_threshold = 2);

    std::size_t size() const { return size_; }

    HealthState state(std::size_t i) const;

    /** True unless Down (Suspect backends stay routable). */
    bool usable(std::size_t i) const;

    /** A probe or forward succeeded: snap to Healthy. */
    void observeSuccess(std::size_t i);

    /** A probe or forward failed: Healthy -> Suspect; at
     *  fail_threshold consecutive failures -> Down. */
    void observeFailure(std::size_t i);

    /** Backends currently not Down. */
    std::size_t usableCount() const;

    /** Lifetime transition tallies (stats replies and the bench). */
    std::uint64_t transitionsUp() const;
    std::uint64_t transitionsDown() const;

    /** Per-backend state array for stats replies:
     *  [{"state":...,"consecutive_failures":N}, ...]. */
    util::JsonValue toJson() const;

  private:
    struct Entry
    {
        HealthState state = HealthState::Healthy;
        int consecutive_failures = 0;
    };

    std::size_t size_ = 0;
    int fail_threshold_ = 2;

    mutable std::mutex mu_;
    // ramp-lint: guarded_by(mu_)
    std::vector<Entry> entries_;
    // ramp-lint: guarded_by(mu_)
    std::uint64_t ups_ = 0;
    // ramp-lint: guarded_by(mu_)
    std::uint64_t downs_ = 0;

    telemetry::Counter up_counter_ =
        telemetry::counter("route.health_up");
    telemetry::Counter down_counter_ =
        telemetry::counter("route.health_down");
    telemetry::Gauge healthy_gauge_ =
        telemetry::gauge("route.healthy_backends");
};

} // namespace route
} // namespace ramp
