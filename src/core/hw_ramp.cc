#include "core/hw_ramp.hh"

#include <cmath>

#include "util/logging.hh"

namespace ramp {
namespace core {

HwRampEngine::HwRampEngine(Qualification qual,
                           sim::PerStructure<double> on_fractions,
                           SensorParams sensors)
    : engine_(std::move(qual), on_fractions), sensors_(sensors)
{
    if (sensors_.temp_quantum_k <= 0.0)
        util::fatal("sensor temperature quantum must be positive");
    if (sensors_.activity_levels == 0)
        util::fatal("activity counters need at least one level");
    if (sensors_.voltage_quantum_v <= 0.0)
        util::fatal("voltage quantum must be positive");
}

double
HwRampEngine::quantiseTemp(double temp_k) const
{
    const double biased = temp_k + sensors_.temp_offset_k;
    return std::round(biased / sensors_.temp_quantum_k) *
           sensors_.temp_quantum_k;
}

double
HwRampEngine::quantiseActivity(double alpha) const
{
    const auto levels = static_cast<double>(sensors_.activity_levels);
    double q = std::round(alpha * levels) / levels;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    return q;
}

double
HwRampEngine::quantiseVoltage(double voltage_v) const
{
    return std::round(voltage_v / sensors_.voltage_quantum_v) *
           sensors_.voltage_quantum_v;
}

void
HwRampEngine::addInterval(const sim::PerStructure<double> &temps_k,
                          const sim::PerStructure<double> &activity,
                          double voltage_v, double frequency_ghz,
                          double duration_s)
{
    sim::PerStructure<double> q_temps{};
    sim::PerStructure<double> q_act{};
    for (std::size_t i = 0; i < sim::num_structures; ++i) {
        q_temps[i] = quantiseTemp(temps_k[i]);
        q_act[i] = quantiseActivity(activity[i]);
    }
    engine_.addInterval(q_temps, q_act, quantiseVoltage(voltage_v),
                        frequency_ghz, duration_s);
}

} // namespace core
} // namespace ramp
