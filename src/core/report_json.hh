/**
 * @file
 * JSON serialisation of the library's result types, for plotting
 * scripts and CI diffing. Each function emits one complete JSON
 * value to the stream.
 */

#pragma once

#include <iosfwd>

#include "core/engine.hh"
#include "core/evaluator.hh"

namespace ramp {
namespace core {

/** Emit an operating point (config, IPC, power, temps, misses). */
void writeJson(std::ostream &os, const OperatingPoint &op);

/** Emit a FIT report (per structure x mechanism, totals, MTTF). */
void writeJson(std::ostream &os, const FitReport &report);

} // namespace core
} // namespace ramp

