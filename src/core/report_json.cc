#include "core/report_json.hh"

#include <ostream>
#include <string>

#include "util/json.hh"

namespace ramp {
namespace core {

using sim::allStructures;
using sim::structureIndex;

void
writeJson(std::ostream &os, const OperatingPoint &op)
{
    util::JsonWriter w(os);
    w.beginObject();

    w.key("config").beginObject();
    w.kv("describe", op.config.describe());
    w.kv("frequency_ghz", op.config.frequency_ghz);
    w.kv("voltage_v", op.config.voltage_v);
    w.kv("window", std::uint64_t{op.config.window_size});
    w.kv("int_alu", std::uint64_t{op.config.num_int_alu});
    w.kv("fpu", std::uint64_t{op.config.num_fpu});
    w.endObject();

    w.kv("ipc", op.ipc());
    w.kv("uops_per_second", op.uopsPerSecond());
    w.kv("power_dynamic_w", op.power.totalDynamic());
    w.kv("power_leakage_w", op.power.totalLeakage());
    w.kv("power_total_w", op.totalPower());
    w.kv("temp_max_k", op.maxTemp());
    w.kv("temp_avg_k", op.avgTemp());
    w.kv("temp_sink_k", op.sink_temp_k);
    w.kv("l1d_miss_ratio", op.l1d_miss_ratio);
    w.kv("l1i_miss_ratio", op.l1i_miss_ratio);
    w.kv("l2_miss_ratio", op.l2_miss_ratio);
    w.kv("mispredict_rate", op.stats.mispredictRate());

    w.key("structures").beginObject();
    for (auto s : allStructures()) {
        const auto i = structureIndex(s);
        w.key(std::string(sim::structureName(s))).beginObject();
        w.kv("activity", op.activity.activity[i]);
        w.kv("temp_k", op.temps_k[i]);
        w.kv("power_w", op.power.dynamic_w[i] + op.power.leakage_w[i]);
        w.endObject();
    }
    w.endObject();

    w.endObject();
    os << '\n';
}

void
writeJson(std::ostream &os, const FitReport &report)
{
    util::JsonWriter w(os);
    w.beginObject();
    w.kv("total_fit", report.totalFit());
    w.kv("mttf_years", report.mttfYears());
    w.kv("total_time_s", report.total_time_s);

    w.key("by_mechanism").beginObject();
    for (auto m : allMechanisms())
        w.kv(std::string(mechanismName(m)), report.mechanismFit(m));
    w.endObject();

    w.key("by_structure").beginObject();
    for (auto s : allStructures()) {
        const auto i = structureIndex(s);
        w.key(std::string(sim::structureName(s))).beginObject();
        w.kv("fit", report.structureFit(s));
        w.kv("avg_temp_k", report.avg_temp_k[i]);
        w.key("mechanisms").beginObject();
        for (auto m : allMechanisms())
            w.kv(std::string(mechanismName(m)),
                 report.fit[i][mechanismIndex(m)]);
        w.endObject();
        w.endObject();
    }
    w.endObject();

    w.endObject();
    os << '\n';
}

} // namespace core
} // namespace ramp
