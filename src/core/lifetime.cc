#include "core/lifetime.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/constants.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace ramp {
namespace core {

using sim::allStructures;
using sim::structureIndex;

LifetimeSimulator::LifetimeSimulator(LifetimeParams params)
    : params_(params)
{
    if (params_.samples == 0)
        util::fatal("lifetime simulation needs at least one sample");
    for (double beta : params_.weibull_shape)
        if (beta <= 0.0)
            util::fatal("Weibull shape must be positive");
}

namespace {

/** Redundant unit count of a structure (execution pools only). */
std::uint32_t
unitsOf(sim::StructureId s)
{
    switch (s) {
      case sim::StructureId::IntAlu:
        return 6;
      case sim::StructureId::Fpu:
        return 4;
      default:
        return 1;
    }
}

} // namespace

LifetimeEstimate
LifetimeSimulator::estimate(const FitReport &report) const
{
    // Pre-compute Weibull scales: mean = scale * Gamma(1 + 1/beta),
    // with the mean anchored to each component's MTTF from its FIT.
    // A structure without spares is one aggregate component per
    // mechanism (the paper's series assumption); with spares its FIT
    // is split over its units and it survives until the (spares+1)-th
    // unit failure.
    struct Component
    {
        double scale_years;
        double inv_beta;
        std::size_t group;      ///< Structure sparing group.
    };
    struct Group
    {
        std::uint32_t units = 1;
        std::uint32_t spares = 0;
    };
    std::vector<Component> components;
    std::vector<Group> groups;

    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        Group g;
        g.units = unitsOf(s);
        g.spares = std::min(params_.spares[si],
                            g.units > 0 ? g.units - 1 : 0u);
        if (g.spares == 0)
            g.units = 1; // aggregate component, legacy behaviour
        const std::size_t group_id = groups.size();
        groups.push_back(g);

        for (auto m : allMechanisms()) {
            const double fit =
                report.fit[si][mechanismIndex(m)];
            if (fit <= 0.0)
                continue; // mechanism inactive for this structure
            const double unit_fit = fit / g.units;
            // ramp-lint: convert(fit->years): MTTF = 1e9/FIT hours
            const double mean_years = util::fitToMttfYears(unit_fit);
            const double beta =
                params_.weibull_shape[mechanismIndex(m)];
            const double scale =
                mean_years / std::tgamma(1.0 + 1.0 / beta);
            components.push_back({scale, 1.0 / beta, group_id});
        }
    }

    LifetimeEstimate out;
    out.sofr_mttf_years = report.mttfYears();
    if (components.empty()) {
        out.mttf_years = out.median_years = out.p01_years =
            out.p99_years = 1e30;
        return out;
    }

    util::Rng rng(params_.seed);
    std::vector<double> minima;
    minima.reserve(params_.samples);
    util::RunningStat stat;
    std::vector<std::vector<double>> unit_times(groups.size());
    for (std::uint32_t i = 0; i < params_.samples; ++i) {
        for (auto &v : unit_times)
            v.clear();
        for (std::size_t g = 0; g < groups.size(); ++g)
            unit_times[g].assign(groups[g].units, 1e300);

        // Each unit of each group dies at its earliest mechanism.
        for (const auto &c : components) {
            auto &units = unit_times[c.group];
            for (auto &unit : units) {
                const double u = 1.0 - rng.uniform(); // (0, 1]
                const double t =
                    c.scale_years *
                    std::pow(-std::log(u), c.inv_beta);
                unit = std::min(unit, t);
            }
        }

        // A group dies at its (spares+1)-th unit failure; the
        // processor at its first group death.
        double lifetime_years = 1e300;
        for (std::size_t g = 0; g < groups.size(); ++g) {
            auto &units = unit_times[g];
            const std::size_t k = groups[g].spares; // 0-indexed
            std::nth_element(units.begin(), units.begin() + k,
                             units.end());
            lifetime_years = std::min(lifetime_years, units[k]);
        }
        minima.push_back(lifetime_years);
        stat.add(lifetime_years);
    }
    std::sort(minima.begin(), minima.end());

    auto quantile = [&](double q) {
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(minima.size() - 1));
        return minima[idx];
    };
    out.mttf_years = stat.mean();
    out.median_years = quantile(0.5);
    out.p01_years = quantile(0.01);
    out.p99_years = quantile(0.99);
    out.stddev_years = stat.stddev();
    return out;
}

double
serviceLifeHours(double service_life_years)
{
    return service_life_years * util::hours_per_year;
}

double
damageRatePerHour(double fit, double allocation_fit,
                  double service_life_years)
{
    if (allocation_fit <= 0.0 || service_life_years <= 0.0)
        return 0.0;
    return fit / (allocation_fit * serviceLifeHours(service_life_years));
}

sim::PerStructure<std::array<double, num_mechanisms>>
damageRatesPerHour(const Qualification &qual, const FitReport &report,
                   double service_life_years)
{
    sim::PerStructure<std::array<double, num_mechanisms>> rates{};
    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        for (auto m : allMechanisms()) {
            const std::size_t mi = mechanismIndex(m);
            rates[si][mi] =
                damageRatePerHour(report.fit[si][mi],
                                  qual.allocation(s, m),
                                  service_life_years);
        }
    }
    return rates;
}

} // namespace core
} // namespace ramp
