#include "core/qualification.hh"

#include <cmath>

#include "util/logging.hh"

namespace ramp {
namespace core {

using sim::allStructures;
using sim::StructureId;
using sim::structureIndex;

Qualification::Qualification(QualificationSpec spec) : spec_(spec)
{
    if (spec_.target_fit <= 0.0)
        util::fatal("qualification target FIT must be positive");
    if (spec_.t_qual_k <= spec_.ambient_k)
        util::fatal(util::cat("T_qual (", spec_.t_qual_k,
                              " K) must exceed ambient (",
                              spec_.ambient_k, " K)"));
    if (spec_.v_qual_v <= 0.0 || spec_.f_qual_ghz <= 0.0)
        util::fatal("qualification voltage/frequency must be positive");

    // Budget split: even across mechanisms, area-proportional across
    // structures (Section 3.7).
    const double per_mechanism =
        spec_.target_fit / static_cast<double>(num_mechanisms);
    const double total_area = sim::totalCoreArea();

    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        const double share = sim::structureArea(s) / total_area;
        const OperatingConditions qc = qualConditions(s);
        for (auto m : allMechanisms()) {
            const std::size_t mi = mechanismIndex(m);
            alloc_[si][mi] = per_mechanism * share;
            log_rate_qual_[si][mi] = logRelativeRate(m, qc);
        }
    }
}

OperatingConditions
Qualification::qualConditions(StructureId s) const
{
    OperatingConditions c;
    c.temp_k = spec_.t_qual_k;
    c.voltage_v = spec_.v_qual_v;
    c.frequency_ghz = spec_.f_qual_ghz;
    c.activity_af = spec_.alpha_qual[structureIndex(s)];
    c.ambient_k = spec_.ambient_k;
    c.em_j_scale = spec_.em_j_scale_qual;
    return c;
}

double
Qualification::allocation(StructureId s, Mechanism m) const
{
    return alloc_[structureIndex(s)][mechanismIndex(m)];
}

double
Qualification::fit(StructureId s, Mechanism m,
                   const OperatingConditions &actual,
                   double on_fraction) const
{
    const std::size_t si = structureIndex(s);
    const std::size_t mi = mechanismIndex(m);
    const double log_ratio =
        logRelativeRate(m, actual) - log_rate_qual_[si][mi];
    double f = alloc_[si][mi] * std::exp(log_ratio);
    // Power gating removes current and field from the gated area:
    // EM and TDDB scale with the powered-on fraction (Section 6.1).
    if (m == Mechanism::EM || m == Mechanism::TDDB)
        f *= on_fraction;
    return f;
}

} // namespace core
} // namespace ramp
