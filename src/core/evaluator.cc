#include "core/evaluator.hh"

#include <algorithm>
#include <cmath>

#include "fault/fault.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "workload/trace_gen.hh"

namespace ramp {
namespace core {

using sim::num_structures;
using sim::PerStructure;

namespace {

/** Telemetry handles, registered once (Section 6.3 hot loop). */
struct EvalMetrics
{
    telemetry::Counter evaluate_calls =
        telemetry::counter("evaluator.evaluate_calls");
    telemetry::Counter converge_calls =
        telemetry::counter("evaluator.converge_calls");
    /** Fixed-point iterations per convergeThermal() call. */
    telemetry::Histogram iterations =
        telemetry::histogram("evaluator.iterations", 0.0, 32.0, 32);
    /** Worst per-block residual (K) when the loop stopped; overflow
     *  bin = hit the iteration limit far from convergence. */
    telemetry::Histogram residual_k =
        telemetry::histogram("evaluator.residual_k", 0.0, 0.02, 20);
    /** Wall time of a full evaluate() (sim + fixed point). */
    telemetry::Histogram evaluate_s =
        telemetry::histogram("evaluator.evaluate_s", 0.0, 2.0, 40);
    /** Fixed points that stopped at the iteration limit (including
     *  fault-forced ones); their points carry converged == false. */
    telemetry::Counter non_converged =
        telemetry::counter("evaluator.non_converged");
};

EvalMetrics &
evalMetrics()
{
    static EvalMetrics m;
    return m;
}

} // namespace

double
OperatingPoint::maxTemp() const
{
    double m = temps_k[0];
    for (double t : temps_k)
        m = std::max(m, t);
    return m;
}

double
OperatingPoint::avgTemp() const
{
    double sum = 0.0;
    double area = 0.0;
    for (auto id : sim::allStructures()) {
        const double a = sim::structureArea(id);
        sum += temps_k[sim::structureIndex(id)] * a;
        area += a;
    }
    return sum / area;
}

Evaluator::Evaluator(EvalParams params) : params_(params)
{
    if (params_.measure_uops == 0)
        util::fatal("evaluator needs a nonzero measurement length");
    if (params_.max_iterations == 0)
        util::fatal("evaluator needs at least one thermal iteration");
    if (params_.tolerance_k <= 0.0)
        util::fatal("thermal tolerance must be positive");
}

namespace {

/** Scheduling-independent identity of one fixed-point invocation,
 *  for the forced-non-convergence fault hook. */
std::uint64_t
convergeSiteHash(const sim::MachineConfig &cfg,
                 const sim::ActivitySample &activity)
{
    std::uint64_t h = fault::faultHash(0, cfg.frequency_ghz);
    h = fault::faultHash(h, cfg.voltage_v);
    h = fault::faultHash(h, static_cast<double>(cfg.fetch_duty_x8));
    h = fault::faultHash(h, static_cast<double>(cfg.num_int_alu));
    h = fault::faultHash(h, static_cast<double>(cfg.num_fpu));
    h = fault::faultHash(h, static_cast<double>(cfg.num_agen));
    h = fault::faultHash(h, static_cast<double>(activity.cycles));
    h = fault::faultHash(h, static_cast<double>(activity.retired));
    return h;
}

} // namespace

util::Result<OperatingPoint>
Evaluator::tryConvergeThermal(const sim::MachineConfig &cfg,
                              const sim::ActivitySample &activity,
                              const sim::CoreStats &stats) const
{
    const power::PowerModel pmodel(cfg, params_.power_params);
    const thermal::ThermalModel tmodel(params_.thermal_params);

    OperatingPoint op;
    op.config = cfg;
    op.activity = activity;
    op.stats = stats;

    // Start from a flat guess a little above ambient.
    PerStructure<double> temps;
    temps.fill(params_.thermal_params.ambient_k + 30.0);

    // Leakage evaluation temperature is clamped: above ~450 K the
    // exponential leakage-temperature loop has no stable fixed point
    // (thermal runaway). The clamp keeps the solve finite; runaway
    // operating points then report enormous (but finite) temperatures
    // and FIT, and every selection policy rejects them.
    constexpr double leak_temp_cap = 450.0;

    auto &metrics = evalMetrics();
    metrics.converge_calls.add();
    std::uint32_t iterations = 0;
    double final_residual_k = 0.0;

    const auto dyn = pmodel.dynamicPower(activity);
    thermal::SteadyTemps steady{};
    for (std::uint32_t it = 0; it < params_.max_iterations; ++it) {
        PerStructure<double> leak_temps = temps;
        for (auto &t : leak_temps)
            t = std::min(t, leak_temp_cap);
        if (!params_.leakage_feedback) {
            // Ablation: leakage pinned at the reference density.
            leak_temps.fill(params_.power_params.leakage_t_ref);
        }
        const auto leak = pmodel.leakagePower(leak_temps);

        PerStructure<double> total{};
        for (std::size_t i = 0; i < num_structures; ++i)
            total[i] = dyn[i] + leak[i];
        auto solve = tmodel.trySteadyState(total);
        if (!solve)
            return solve.error();
        steady = std::move(solve.value());

        double worst = 0.0;
        for (std::size_t i = 0; i < num_structures; ++i) {
            worst = std::max(worst,
                             std::fabs(steady.block_k[i] - temps[i]));
            // Mild damping keeps the exponential leakage loop stable
            // even at high power density.
            temps[i] = 0.5 * temps[i] + 0.5 * steady.block_k[i];
        }
        ++iterations;
        final_residual_k = worst;
        if (worst < params_.tolerance_k)
            break;
        if (it + 1 == params_.max_iterations)
            util::warn("thermal fixed point hit the iteration limit");
    }
    metrics.iterations.add(static_cast<double>(iterations));
    metrics.residual_k.add(final_residual_k);

    // Stopped at the limit without meeting tolerance: the iterate is
    // not a fixed point. Also the hook for the forced-non-convergence
    // fault, which flags the (otherwise clean) point so downstream
    // handling of untrusted evaluations can be exercised.
    op.converged = final_residual_k < params_.tolerance_k;
    if (const auto *plan = fault::activeFaultPlan();
        plan && op.converged &&
        fault::forceNonConvergence(
            *plan, convergeSiteHash(cfg, activity)))
        op.converged = false;
    if (!op.converged)
        metrics.non_converged.add();

    op.temps_k = temps;
    op.sink_temp_k = steady.sink_k;
    PerStructure<double> leak_temps = temps;
    for (auto &t : leak_temps)
        t = std::min(t, leak_temp_cap);
    if (!params_.leakage_feedback)
        leak_temps.fill(params_.power_params.leakage_t_ref);
    op.power = pmodel.breakdown(activity, leak_temps);
    for (double t : op.temps_k)
        if (!std::isfinite(t))
            return util::RampError{
                util::ErrorCode::NonFiniteValue,
                "thermal fixed point produced non-finite "
                "temperatures"};
    return op;
}

OperatingPoint
Evaluator::convergeThermal(const sim::MachineConfig &cfg,
                           const sim::ActivitySample &activity,
                           const sim::CoreStats &stats) const
{
    auto result = tryConvergeThermal(cfg, activity, stats);
    if (!result)
        util::fatal(util::cat("convergeThermal: ",
                              result.error().str()));
    return std::move(result.value());
}

util::Result<OperatingPoint>
Evaluator::tryEvaluate(const sim::MachineConfig &cfg,
                       const workload::AppProfile &profile) const
{
    auto &metrics = evalMetrics();
    metrics.evaluate_calls.add();
    telemetry::ScopedTimer timer(metrics.evaluate_s, "evaluate",
                                 "evaluator");

    workload::TraceGenerator gen(profile, params_.seed);
    sim::Core core(cfg, gen);

    core.runUops(params_.warmup_uops);
    core.takeInterval();
    core.resetStats();

    const auto &mem = core.memory();
    const auto l1d_acc0 = mem.l1d().accesses();
    const auto l1d_miss0 = mem.l1d().misses();
    const auto l1i_acc0 = mem.l1i().accesses();
    const auto l1i_miss0 = mem.l1i().misses();
    const auto l2_acc0 = mem.l2().accesses();
    const auto l2_miss0 = mem.l2().misses();

    core.runUops(params_.measure_uops);
    const sim::ActivitySample activity = core.takeInterval();

    auto result = tryConvergeThermal(cfg, activity, core.stats());
    if (!result)
        return result.error();
    OperatingPoint &op = result.value();
    auto ratio = [](std::uint64_t miss, std::uint64_t acc) {
        return acc ? static_cast<double>(miss) /
                         static_cast<double>(acc)
                   : 0.0;
    };
    op.l1d_miss_ratio = ratio(mem.l1d().misses() - l1d_miss0,
                              mem.l1d().accesses() - l1d_acc0);
    op.l1i_miss_ratio = ratio(mem.l1i().misses() - l1i_miss0,
                              mem.l1i().accesses() - l1i_acc0);
    op.l2_miss_ratio = ratio(mem.l2().misses() - l2_miss0,
                             mem.l2().accesses() - l2_acc0);
    return result;
}

OperatingPoint
Evaluator::evaluate(const sim::MachineConfig &cfg,
                    const workload::AppProfile &profile) const
{
    auto result = tryEvaluate(cfg, profile);
    if (!result)
        util::fatal(util::cat("evaluate: ", result.error().str()));
    return std::move(result.value());
}

} // namespace core
} // namespace ramp
