#include "core/engine.hh"

#include "util/constants.hh"
#include "util/logging.hh"

namespace ramp {
namespace core {

using sim::allStructures;
using sim::StructureId;
using sim::structureIndex;

double
FitReport::structureFit(StructureId s) const
{
    double t = 0.0;
    for (double v : fit[structureIndex(s)])
        t += v;
    return t;
}

double
FitReport::mechanismFit(Mechanism m) const
{
    double t = 0.0;
    for (auto s : allStructures())
        t += fit[structureIndex(s)][mechanismIndex(m)];
    return t;
}

double
FitReport::totalFit() const
{
    double t = 0.0;
    for (auto m : allMechanisms())
        t += mechanismFit(m);
    return t;
}

double
FitReport::mttfYears() const
{
    const double f = totalFit();
    return f > 0.0 ? util::fitToMttfYears(f) : 1e30;
}

RampEngine::RampEngine(Qualification qual,
                       sim::PerStructure<double> on_fractions,
                       double em_j_scale)
    : qual_(std::move(qual)), on_frac_(on_fractions),
      em_j_scale_(em_j_scale)
{
    if (em_j_scale <= 0.0)
        util::fatal("EM current-density scale must be positive");
    for (double f : on_frac_)
        if (f < 0.0 || f > 1.0)
            util::fatal("powered-on fraction must be in [0,1]");
}

void
RampEngine::addInterval(const sim::PerStructure<double> &temps_k,
                        const sim::PerStructure<double> &activity,
                        double voltage_v, double frequency_ghz,
                        double duration_s)
{
    if (duration_s <= 0.0)
        util::fatal("RampEngine interval duration must be positive");

    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        OperatingConditions c;
        c.temp_k = temps_k[si];
        c.voltage_v = voltage_v;
        c.frequency_ghz = frequency_ghz;
        c.activity_af = activity[si];
        c.ambient_k = qual_.spec().ambient_k;
        c.em_j_scale = em_j_scale_;

        // Instantaneous FIT per interval for the three "live"
        // mechanisms; TC is handled from the run-average temperature.
        rate_acc_[si][0].add(qual_.fit(s, Mechanism::EM, c,
                                       on_frac_[si]), duration_s);
        rate_acc_[si][1].add(qual_.fit(s, Mechanism::SM, c,
                                       on_frac_[si]), duration_s);
        rate_acc_[si][2].add(qual_.fit(s, Mechanism::TDDB, c,
                                       on_frac_[si]), duration_s);
        temp_acc_[si].add(c.temp_k, duration_s);
        act_acc_[si].add(c.activity_af, duration_s);
    }
    ++intervals_;
}

FitReport
RampEngine::report() const
{
    FitReport r;
    if (intervals_ == 0)
        return r;

    for (auto s : allStructures()) {
        const std::size_t si = structureIndex(s);
        r.fit[si][mechanismIndex(Mechanism::EM)] =
            rate_acc_[si][0].mean();
        r.fit[si][mechanismIndex(Mechanism::SM)] =
            rate_acc_[si][1].mean();
        r.fit[si][mechanismIndex(Mechanism::TDDB)] =
            rate_acc_[si][2].mean();

        // Thermal cycling: whole-run average temperature vs ambient
        // (Section 3.6).
        OperatingConditions c;
        c.temp_k = temp_acc_[si].mean();
        c.voltage_v = qual_.spec().v_qual_v;
        c.frequency_ghz = qual_.spec().f_qual_ghz;
        c.activity_af = act_acc_[si].mean();
        c.ambient_k = qual_.spec().ambient_k;
        c.em_j_scale = em_j_scale_;
        r.fit[si][mechanismIndex(Mechanism::TC)] =
            qual_.fit(s, Mechanism::TC, c, on_frac_[si]);

        r.avg_temp_k[si] = temp_acc_[si].mean();
        r.total_time_s = temp_acc_[si].totalTime();
    }
    return r;
}

void
RampEngine::reset()
{
    for (auto &per_struct : rate_acc_)
        for (auto &acc : per_struct)
            acc.reset();
    for (auto &acc : temp_acc_)
        acc.reset();
    for (auto &acc : act_acc_)
        acc.reset();
    intervals_ = 0;
}

FitReport
combineReports(const std::vector<FitReport> &reports,
               const std::vector<double> &weights)
{
    if (reports.empty() || reports.size() != weights.size())
        util::fatal("combineReports needs matching nonempty "
                    "reports/weights");
    double total_w = 0.0;
    for (double w : weights) {
        if (w <= 0.0)
            util::fatal("workload weights must be positive");
        total_w += w;
    }

    FitReport out;
    for (std::size_t r = 0; r < reports.size(); ++r) {
        const double share = weights[r] / total_w;
        for (auto s : allStructures()) {
            const std::size_t si = structureIndex(s);
            for (auto m : allMechanisms()) {
                const std::size_t mi = mechanismIndex(m);
                out.fit[si][mi] += share * reports[r].fit[si][mi];
            }
            out.avg_temp_k[si] +=
                share * reports[r].avg_temp_k[si];
        }
        out.total_time_s += reports[r].total_time_s;
    }
    return out;
}

FitReport
steadyFit(const Qualification &qual,
          const sim::PerStructure<double> &on_fractions,
          const sim::PerStructure<double> &temps_k,
          const sim::PerStructure<double> &activity, double voltage_v,
          double frequency_ghz, double em_j_scale)
{
    RampEngine engine(qual, on_fractions, em_j_scale);
    engine.addInterval(temps_k, activity, voltage_v, frequency_ghz,
                       1.0);
    return engine.report();
}

} // namespace core
} // namespace ramp
