/**
 * @file
 * Hardware-implementable RAMP (paper Section 3: "In real hardware,
 * RAMP would require sensors and counters that provide information on
 * processor operating conditions").
 *
 * The simulator-side RampEngine consumes exact floating-point
 * temperatures and activity factors. A hardware implementation reads
 * quantised thermal sensors (on-die diodes have ~1 K resolution and a
 * calibration offset) and coarse activity counters (a few bits per
 * structure per sampling window). HwRampEngine models exactly that:
 * it quantises its inputs before feeding the same FIT arithmetic, so
 * the gap between it and the exact engine *is* the cost of a hardware
 * implementation -- measured by tests and the ablation bench.
 */

#pragma once

#include "core/engine.hh"

namespace ramp {
namespace core {

/** Sensor and counter precision of the hardware implementation. */
struct SensorParams
{
    /** Thermal sensor quantisation step (K). Typical diode-based
     *  on-die sensors resolve ~1 K. */
    double temp_quantum_k = 1.0;

    /** Fixed calibration offset applied by every sensor (K);
     *  positive reads hot (conservative). */
    double temp_offset_k = 0.0;

    /** Activity counter resolution: activity is reported in
     *  1/activity_levels buckets (e.g. 16 -> 4-bit counters). */
    std::uint32_t activity_levels = 16;

    /** Supply-voltage telemetry quantisation (V). */
    double voltage_quantum_v = 0.0125;
};

/**
 * RAMP on quantised inputs. Mirrors RampEngine's interface; the
 * quantisation is applied inside addInterval.
 */
class HwRampEngine
{
  public:
    HwRampEngine(Qualification qual,
                 sim::PerStructure<double> on_fractions,
                 SensorParams sensors = {});

    /** Record one interval through the modelled sensors. */
    void addInterval(const sim::PerStructure<double> &temps_k,
                     const sim::PerStructure<double> &activity,
                     double voltage_v, double frequency_ghz,
                     double duration_s);

    /** Report accumulated FIT (same semantics as RampEngine). */
    FitReport report() const { return engine_.report(); }

    /** Discard accumulated state. */
    void reset() { engine_.reset(); }

    std::uint64_t intervals() const { return engine_.intervals(); }

    const SensorParams &sensors() const { return sensors_; }

    /** Quantise one temperature the way the sensors would. */
    double quantiseTemp(double temp_k) const;

    /** Quantise one activity factor the way the counters would. */
    double quantiseActivity(double alpha) const;

    /** Quantise the voltage telemetry. */
    double quantiseVoltage(double voltage_v) const;

  private:
    RampEngine engine_;
    SensorParams sensors_;
};

} // namespace core
} // namespace ramp

