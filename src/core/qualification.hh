/**
 * @file
 * Reliability qualification (paper Section 3.7).
 *
 * A processor is qualified to a target failure rate (FIT_target =
 * 4000, i.e. ~30-year MTTF) at a chosen set of qualification
 * parameters: temperature T_qual, voltage V_qual, frequency f_qual,
 * and activity alpha_qual. The qualification parameters act as a
 * proxy for qualification *cost*: the higher they are, the more
 * expensive the part is to qualify (Section 3.7 -- the paper sweeps
 * T_qual only, fixing V_qual and f_qual at the base operating point
 * and alpha_qual at the per-structure maximum across the workload
 * suite).
 *
 * The 4000-FIT budget is split evenly across the four mechanisms, and
 * each mechanism's share across structures proportionally to area.
 * Solving FIT(qual conditions) = allocation for the technology
 * proportionality constant then lets RAMP report an absolute FIT for
 * any actual operating conditions.
 */

#pragma once

#include "core/mechanisms.hh"
#include "sim/structures.hh"

namespace ramp {
namespace core {

/** Qualification parameter set (the cost proxy). */
struct QualificationSpec
{
    /** Target total failure rate in FIT (4000 ~ 30-year MTTF). */
    double target_fit = 4000.0;

    /** Qualification temperature, K (the knob the paper sweeps). */
    double t_qual_k = 400.0;

    /** Qualification voltage (fixed at the base supply). */
    double v_qual_v = 1.0;

    /** Qualification frequency, GHz (fixed at the base clock). */
    double f_qual_ghz = 4.0;

    /** Per-structure qualification activity: the highest activity
     *  factor observed across the application suite on the base
     *  machine. */
    sim::PerStructure<double> alpha_qual{};

    /** Ambient temperature used for the thermal-cycling budget, K. */
    double ambient_k = 300.0;

    /** EM current-density technology scale at qualification (see
     *  OperatingConditions::em_j_scale). */
    double em_j_scale_qual = 1.0;
};

/**
 * A fully-solved qualification: per-(structure, mechanism) FIT
 * allocations and the log-rates at the qualification point.
 */
class Qualification
{
  public:
    explicit Qualification(QualificationSpec spec);

    /** FIT budget allocated to one structure/mechanism pair. */
    double allocation(sim::StructureId s, Mechanism m) const;

    /**
     * Absolute FIT of structure s under mechanism m at the given
     * actual conditions.
     *
     * @param on_fraction Powered-on area fraction of the structure;
     *        scales EM and TDDB only (gated area has no current and
     *        no field; mechanical mechanisms are unaffected).
     */
    double fit(sim::StructureId s, Mechanism m,
               const OperatingConditions &actual,
               double on_fraction = 1.0) const;

    const QualificationSpec &spec() const { return spec_; }

    /** Conditions the part was qualified at (for structure s). */
    OperatingConditions qualConditions(sim::StructureId s) const;

  private:
    QualificationSpec spec_;
    /** log r(qual) per structure x mechanism. */
    sim::PerStructure<std::array<double, num_mechanisms>> log_rate_qual_;
    /** FIT allocation per structure x mechanism. */
    sim::PerStructure<std::array<double, num_mechanisms>> alloc_;
};

} // namespace core
} // namespace ramp

