/**
 * @file
 * Monte-Carlo lifetime simulation beyond SOFR (paper Section 8
 * future work: "incorporate time dependence in our reliability
 * models and relax the series failure assumption").
 *
 * SOFR assumes every failure mechanism has a constant failure rate
 * (exponential lifetimes), which the paper itself calls "clearly
 * inaccurate" for wear-out: real wear-out failure rates grow with
 * age (Weibull shape beta > 1). This module samples per-(structure,
 * mechanism) lifetimes from Weibull distributions whose *means* match
 * the RAMP FIT report, forms the processor lifetime as the series-
 * system minimum, and estimates the lifetime distribution.
 *
 * The headline effect: for identical means, wear-out (beta > 1)
 * failures cluster near their means instead of spreading
 * exponentially, so the series-system MTTF is *longer* than the SOFR
 * estimate -- SOFR is conservative for wear-out -- while the spread
 * (and hence the early-failure tail that qualification actually
 * cares about) shrinks.
 */

#pragma once

#include <array>
#include <cstdint>

#include "core/engine.hh"

namespace ramp {
namespace core {

/** Controls for the Monte-Carlo lifetime estimate. */
struct LifetimeParams
{
    /**
     * Weibull shape per mechanism. beta = 1 reproduces SOFR's
     * exponential assumption exactly; wear-out mechanisms are
     * conventionally modelled with beta around 2 (EM, SM, TDDB) and
     * steeper for low-cycle fatigue (TC).
     */
    std::array<double, num_mechanisms> weibull_shape{2.0, 2.0, 2.0,
                                                     2.5};

    /** Monte-Carlo sample count. */
    std::uint32_t samples = 20000;

    /** RNG seed (results are deterministic in it). */
    std::uint64_t seed = 12345;

    /**
     * Cold spares per structure (Shivakumar et al., cited by the
     * paper: exploiting microarchitectural redundancy to extend
     * useful lifetime). A structure with s spares fails only at its
     * (s+1)-th unit failure; its FIT is split evenly over its units
     * (units = FU count for the execution pools, 1 elsewhere).
     * All zeros = the paper's series-system assumption.
     */
    sim::PerStructure<std::uint32_t> spares{};
};

/** Lifetime distribution estimate for one FIT report. */
struct LifetimeEstimate
{
    double mttf_years = 0.0;    ///< Mean of the sampled minima.
    double median_years = 0.0;  ///< 50th percentile.
    double p01_years = 0.0;     ///< 1st percentile (early failures).
    double p99_years = 0.0;     ///< 99th percentile.
    double stddev_years = 0.0;
    /** The SOFR (exponential, series) MTTF for the same report. */
    double sofr_mttf_years = 0.0;
};

/** Samples series-system lifetimes from a RAMP FIT report. */
class LifetimeSimulator
{
  public:
    explicit LifetimeSimulator(LifetimeParams params = {});

    /**
     * Estimate the processor lifetime distribution implied by the
     * report's per-(structure, mechanism) FIT matrix.
     */
    LifetimeEstimate estimate(const FitReport &report) const;

    const LifetimeParams &params() const { return params_; }

  private:
    LifetimeParams params_;
};

/** Hours in one qualified service life. */
double serviceLifeHours(double service_life_years);

/**
 * Consumed-lifetime fraction accrued per operating hour by one
 * (structure, mechanism) pair running at @p fit, under Miner's rule.
 * Normalised so that holding exactly the allocated FIT for one full
 * service life consumes 1.0 of the pair's budget; equivalently the
 * rate is the relative aging rate r(actual)/r(qual) divided by the
 * service-life hours. Pairs with no allocation do not age (rate 0).
 */
double damageRatePerHour(double fit, double allocation_fit,
                         double service_life_years);

/**
 * Per-(structure, mechanism) damage rates implied by a steady FIT
 * report under the given qualification: the fraction of each pair's
 * qualified budget that one hour of the reported operating history
 * consumes.
 */
sim::PerStructure<std::array<double, num_mechanisms>>
damageRatesPerHour(const Qualification &qual, const FitReport &report,
                   double service_life_years);

} // namespace core
} // namespace ramp

