/**
 * @file
 * Operating-point evaluation: timing simulation + power + thermal
 * fixed point (the paper's Section 6.3 methodology).
 *
 * The paper runs every simulation twice: once to collect average
 * per-structure power, then a steady-state solve to initialise the
 * heat sink, then the measured run. We reproduce that as a fixed
 * point: the timing simulator produces activity factors; dynamic
 * power follows from activity, leakage from temperature; block
 * temperatures follow from total power through the RC network; and
 * leakage feeds back into power until the loop converges (a couple
 * of iterations -- the leakage-temperature loop is a contraction at
 * these operating points).
 */

#pragma once

#include <cstdint>

#include "power/power.hh"
#include "sim/core.hh"
#include "sim/machine.hh"
#include "thermal/model.hh"
#include "util/error.hh"
#include "workload/profile.hh"

namespace ramp {
namespace core {

/** Everything known about one (application, configuration) pairing. */
struct OperatingPoint
{
    sim::MachineConfig config;
    sim::ActivitySample activity;        ///< Measured interval.
    sim::CoreStats stats;                ///< Cumulative measured stats.
    power::PowerBreakdown power;         ///< Converged power.
    sim::PerStructure<double> temps_k{}; ///< Converged steady temps.
    double sink_temp_k = 0.0;

    /** False when the leakage/thermal fixed point stopped at its
     *  iteration limit (or was fault-forced there): the temperatures
     *  are an unconverged iterate, and reliability management must
     *  not trust them. */
    bool converged = true;

    /** Cache behaviour over the measured region (evaluate() only;
     *  zero when the point came from convergeThermal()). */
    double l1d_miss_ratio = 0.0;
    double l1i_miss_ratio = 0.0;
    double l2_miss_ratio = 0.0;

    /** Retired micro-ops per cycle. */
    double ipc() const { return activity.ipc(); }

    /** Absolute performance: retired micro-ops per second. */
    double uopsPerSecond() const
    {
        return ipc() * config.frequency_ghz * 1e9;
    }

    /** Hottest structure temperature (the DTM constraint). */
    double maxTemp() const;

    /** Area-weighted average temperature. */
    double avgTemp() const;

    /** Total chip power in watts. */
    double totalPower() const { return power.total(); }
};

/** Evaluation controls. */
struct EvalParams
{
    /** Micro-ops run before measurement starts. Sized so the L2 is
     *  warm for every L2-resident working set in the suite (streaming
     *  covers ~800KB of data in 600k uops at typical load mixes). */
    std::uint64_t warmup_uops = 600'000;

    /** Micro-ops measured. */
    std::uint64_t measure_uops = 600'000;

    /** Workload generator seed. */
    std::uint64_t seed = 1;

    /** Leakage/thermal fixed-point iteration limit and tolerance.
     *  Near thermal runaway the damped loop contracts at only ~0.8x
     *  per iteration, so the limit leaves headroom. */
    std::uint32_t max_iterations = 100;
    double tolerance_k = 0.01;

    /** Disable the leakage-temperature feedback (ablation knob):
     *  leakage is then evaluated at the reference 383 K density
     *  regardless of the actual block temperature. */
    bool leakage_feedback = true;

    power::PowerParams power_params{};
    thermal::ThermalParams thermal_params{};
};

/**
 * Evaluates (application, machine) operating points. Stateless apart
 * from its parameters; safe to reuse across calls.
 */
class Evaluator
{
  public:
    explicit Evaluator(EvalParams params = {});

    /**
     * Run the workload on the machine and converge the power/thermal
     * loop. Deterministic in (profile, cfg, params). A singular
     * thermal solve or non-finite temperatures come back as a
     * RampError (a recoverable per-point failure); hitting the
     * fixed-point iteration limit is NOT an error -- the point is
     * returned with converged == false for the caller to judge.
     */
    [[nodiscard]] util::Result<OperatingPoint>
    tryEvaluate(const sim::MachineConfig &cfg,
                const workload::AppProfile &profile) const;

    /** tryEvaluate that treats any error as unrecoverable (fatal). */
    OperatingPoint evaluate(const sim::MachineConfig &cfg,
                            const workload::AppProfile &profile) const;

    /**
     * Power/thermal fixed point for an already-measured activity
     * sample (used by the DRM oracle to re-derive temperatures and by
     * ablations). Error/convergence semantics as tryEvaluate.
     */
    [[nodiscard]] util::Result<OperatingPoint>
    tryConvergeThermal(const sim::MachineConfig &cfg,
                       const sim::ActivitySample &activity,
                       const sim::CoreStats &stats) const;

    /** tryConvergeThermal that treats any error as unrecoverable. */
    OperatingPoint
    convergeThermal(const sim::MachineConfig &cfg,
                    const sim::ActivitySample &activity,
                    const sim::CoreStats &stats) const;

    const EvalParams &params() const { return params_; }

  private:
    EvalParams params_;
};

} // namespace core
} // namespace ramp

