#include "core/mechanisms.hh"

#include <algorithm>
#include <cmath>

#include "util/constants.hh"
#include "util/logging.hh"

namespace ramp {
namespace core {

namespace {

constexpr double k_ev = util::k_boltzmann_ev;

/** Effective interconnect current-density factor. The clock network
 *  keeps switching when a structure is gated, so current follows the
 *  same 10% floor the power model charges to idle structures. */
double
effectiveCurrent(const OperatingConditions &c)
{
    const double alpha = std::clamp(c.activity_af, 0.0, 1.0);
    return (0.1 + 0.9 * alpha) * c.voltage_v * c.frequency_ghz *
           c.em_j_scale;
}

double
logRateEm(const OperatingConditions &c)
{
    const double j = std::max(effectiveCurrent(c), 1e-12);
    return MechanismConstants::em_n * std::log(j) -
           MechanismConstants::em_ea_ev / (k_ev * c.temp_k);
}

double
logRateSm(const OperatingConditions &c)
{
    const double dt =
        std::max(std::fabs(MechanismConstants::sm_t0_k - c.temp_k), 0.1);
    return MechanismConstants::sm_n * std::log(dt) -
           MechanismConstants::sm_ea_ev / (k_ev * c.temp_k);
}

double
logRateTddb(const OperatingConditions &c)
{
    const double v = std::max(c.voltage_v, 1e-6);
    const double t = c.temp_k;
    const double volt_exp =
        MechanismConstants::tddb_a - MechanismConstants::tddb_b * t;
    const double thermal =
        (MechanismConstants::tddb_x + MechanismConstants::tddb_y / t +
         MechanismConstants::tddb_z * t) /
        (k_ev * t);
    return volt_exp * std::log(v) - thermal;
}

double
logRateTc(const OperatingConditions &c)
{
    const double dt = std::max(c.temp_k - c.ambient_k, 0.1);
    return MechanismConstants::tc_q * std::log(dt);
}

} // namespace

std::string_view
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::EM:
        return "EM";
      case Mechanism::SM:
        return "SM";
      case Mechanism::TDDB:
        return "TDDB";
      case Mechanism::TC:
        return "TC";
      case Mechanism::NumMechanisms:
        break;
    }
    util::panic("mechanismName: bad mechanism");
}

double
logRelativeRate(Mechanism m, const OperatingConditions &c)
{
    if (c.temp_k <= 0.0)
        util::fatal("mechanism model needs a positive temperature");
    switch (m) {
      case Mechanism::EM:
        return logRateEm(c);
      case Mechanism::SM:
        return logRateSm(c);
      case Mechanism::TDDB:
        return logRateTddb(c);
      case Mechanism::TC:
        return logRateTc(c);
      case Mechanism::NumMechanisms:
        break;
    }
    util::panic("logRelativeRate: bad mechanism");
}

double
mttfRatio(Mechanism m, const OperatingConditions &c,
          const OperatingConditions &ref)
{
    return std::exp(logRelativeRate(m, ref) - logRelativeRate(m, c));
}

} // namespace core
} // namespace ramp
