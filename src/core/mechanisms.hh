/**
 * @file
 * Device-level intrinsic failure mechanism models (paper Sections
 * 3.1-3.4).
 *
 * Each mechanism is expressed as a *relative failure rate* r (the
 * reciprocal of the mechanism's MTTF expression with the technology
 * proportionality constant dropped). RAMP never needs the absolute
 * proportionality constants: reliability qualification (Section 3.7)
 * pins the FIT value at the qualification conditions, so
 *
 *   FIT(cond) = FIT_allocated * r(cond) / r(cond_qual).
 *
 * Rates are computed in log space: activation-energy terms make the
 * raw magnitudes span hundreds of orders of magnitude, but the
 * *ratios* are perfectly tame.
 *
 * Models and constants:
 *  - Electromigration (Black's equation, copper): MTTF ~ J^-1.1
 *    e^{0.9eV/kT}, with current density J proportional to the
 *    effective switching activity (0.1 + 0.9*alpha, matching the
 *    clock-gating floor), voltage, and frequency (Eq. 1-2).
 *  - Stress migration (sputtered copper): MTTF ~ |T0-T|^-2.5
 *    e^{0.9eV/kT}, T0 = 500 K (Eq. 3).
 *  - TDDB (Wu et al.): MTTF ~ (1/V)^{a - bT} e^{(X + Y/T + ZT)/kT}
 *    with a = 78, b = -0.081 K^-1, X = 0.759 eV, Y = -66.8 eV*K,
 *    Z = -8.37e-4 eV/K (Eq. 4).
 *  - Thermal cycling (Coffin-Manson, package): MTTF ~
 *    (1/(T_avg - T_ambient))^{2.35} (Eq. 5-6).
 */

#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace ramp {
namespace core {

/** The four critical intrinsic failure mechanisms (Section 3). */
enum class Mechanism : std::size_t {
    EM,    ///< Electromigration.
    SM,    ///< Stress migration.
    TDDB,  ///< Time-dependent dielectric breakdown.
    TC,    ///< Thermal cycling.
    NumMechanisms,
};

/** Number of modelled mechanisms. */
constexpr std::size_t num_mechanisms =
    static_cast<std::size_t>(Mechanism::NumMechanisms);

/** Iterate all mechanisms. */
constexpr std::array<Mechanism, num_mechanisms>
allMechanisms()
{
    return {Mechanism::EM, Mechanism::SM, Mechanism::TDDB,
            Mechanism::TC};
}

/** Dense index for per-mechanism arrays. */
constexpr std::size_t
mechanismIndex(Mechanism m)
{
    return static_cast<std::size_t>(m);
}

/** Human-readable mechanism name. */
std::string_view mechanismName(Mechanism m);

/** Model constants, exposed for tests and documentation. */
struct MechanismConstants
{
    // Electromigration (copper, JEDEC/Black).
    static constexpr double em_n = 1.1;
    static constexpr double em_ea_ev = 0.9;

    // Stress migration (sputtered copper).
    static constexpr double sm_n = 2.5;
    static constexpr double sm_ea_ev = 0.9;
    static constexpr double sm_t0_k = 500.0;

    // TDDB (Wu et al. / RAMP fitting parameters).
    static constexpr double tddb_a = 78.0;
    static constexpr double tddb_b = -0.081;     // 1/K
    static constexpr double tddb_x = 0.759;      // eV
    static constexpr double tddb_y = -66.8;      // eV*K
    static constexpr double tddb_z = -8.37e-4;   // eV/K

    // Thermal cycling (package solder, Coffin-Manson).
    static constexpr double tc_q = 2.35;
};

/**
 * Operating conditions a mechanism model is evaluated at. For EM, SM,
 * and TDDB these are instantaneous per-interval values; for TC the
 * temperature is the whole-run average (Section 3.6).
 */
struct OperatingConditions
{
    double temp_k = 345.0;       ///< Structure temperature.
    double voltage_v = 1.0;      ///< Supply voltage.
    double frequency_ghz = 4.0;  ///< Clock frequency.
    double activity_af = 0.5;    ///< Structure activity factor [0,1].
    double ambient_k = 300.0;    ///< Ambient (for thermal cycling).
    /** Technology scaling multiplier on the EM current density
     *  (J ~ V*f/feature relative to the reference node); 1.0 at the
     *  65 nm reference. Used by the scaling study. */
    double em_j_scale = 1.0;
};

/**
 * Natural log of the relative failure rate of mechanism m at the
 * given conditions. Differences of this quantity between two
 * condition sets give the FIT ratio.
 */
double logRelativeRate(Mechanism m, const OperatingConditions &c);

/**
 * Relative MTTF between two condition sets:
 * MTTF(c) / MTTF(ref) = r(ref) / r(c). Convenience for tests and
 * examples exploring the raw device models.
 */
double mttfRatio(Mechanism m, const OperatingConditions &c,
                 const OperatingConditions &ref);

} // namespace core
} // namespace ramp

