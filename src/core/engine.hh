/**
 * @file
 * The RAMP engine: SOFR combination across structures and mechanisms
 * (Section 3.5) and FIT accumulation over time (Section 3.6).
 *
 * EM, SM, and TDDB FIT values are computed per interval from the
 * interval's (T, V, f, alpha) and averaged over time weighted by
 * interval duration. Thermal cycling uses the whole-run average
 * temperature of each structure versus ambient, applied once at
 * reporting time. The processor FIT is the plain sum over structures
 * and mechanisms (SOFR: series failure system with exponential
 * lifetimes), and MTTF = 1e9 / FIT hours.
 */

#pragma once

#include <array>
#include <vector>

#include "core/mechanisms.hh"
#include "core/qualification.hh"
#include "sim/structures.hh"
#include "util/stats.hh"

namespace ramp {
namespace core {

/** Per-structure, per-mechanism FIT matrix plus totals. */
struct FitReport
{
    sim::PerStructure<std::array<double, num_mechanisms>> fit{};

    /** Time-average temperature per structure (K). */
    sim::PerStructure<double> avg_temp_k{};

    /** Total time accounted (s of workload execution). */
    double total_time_s = 0.0;

    /** FIT of one structure summed over mechanisms. */
    double structureFit(sim::StructureId s) const;

    /** FIT of one mechanism summed over structures. */
    double mechanismFit(Mechanism m) const;

    /** Processor FIT (SOFR sum over everything). */
    double totalFit() const;

    /** Processor MTTF in years implied by totalFit(). */
    double mttfYears() const;
};

/**
 * Accumulates interval samples for one workload run on one machine
 * configuration and produces the application FIT report.
 */
class RampEngine
{
  public:
    /**
     * @param qual Solved qualification (owned by caller, copied).
     * @param on_fractions Powered-on fraction per structure.
     * @param em_j_scale Technology EM current-density scale for the
     *        tracked machine (1.0 at the 65 nm reference).
     */
    RampEngine(Qualification qual,
               sim::PerStructure<double> on_fractions,
               double em_j_scale = 1.0);

    /**
     * Record one interval of execution.
     *
     * @param temps_k Per-structure temperatures over the interval.
     * @param activity Per-structure activity factors.
     * @param voltage_v Supply voltage during the interval.
     * @param frequency_ghz Clock frequency during the interval.
     * @param duration_s Interval length in seconds (> 0).
     */
    void addInterval(const sim::PerStructure<double> &temps_k,
                     const sim::PerStructure<double> &activity,
                     double voltage_v, double frequency_ghz,
                     double duration_s);

    /** Produce the report for everything recorded so far. */
    FitReport report() const;

    /** Discard accumulated state. */
    void reset();

    /** Number of intervals recorded. */
    std::uint64_t intervals() const { return intervals_; }

    const Qualification &qualification() const { return qual_; }

  private:
    Qualification qual_;
    sim::PerStructure<double> on_frac_;
    double em_j_scale_;

    /** Time-weighted FIT accumulators for EM, SM, TDDB. */
    sim::PerStructure<std::array<util::TimeWeightedStat, 3>> rate_acc_;
    /** Time-weighted temperature per structure (drives TC). */
    sim::PerStructure<util::TimeWeightedStat> temp_acc_;
    /** Time-weighted activity (reported back for diagnostics). */
    sim::PerStructure<util::TimeWeightedStat> act_acc_;

    std::uint64_t intervals_ = 0;
};

/**
 * One-shot helper: the FIT report of a single steady operating point
 * held for one second (the common case for the oracle DRM
 * exploration, where each application is statistically stationary).
 */
FitReport steadyFit(const Qualification &qual,
                    const sim::PerStructure<double> &on_fractions,
                    const sim::PerStructure<double> &temps_k,
                    const sim::PerStructure<double> &activity,
                    double voltage_v, double frequency_ghz,
                    double em_j_scale = 1.0);

/**
 * The FIT report of a *workload*: the weighted average of the FIT
 * values of the constituent applications (paper Section 3.6).
 * Weights are time shares; they must be positive and are normalised
 * internally. Reports and weights must have equal, nonzero size.
 */
FitReport combineReports(const std::vector<FitReport> &reports,
                         const std::vector<double> &weights);

} // namespace core
} // namespace ramp

