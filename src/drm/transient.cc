#include "drm/transient.hh"

#include <algorithm>

#include "sim/core.hh"
#include "util/logging.hh"
#include "workload/trace_gen.hh"

namespace ramp {
namespace drm {

std::uint32_t
TransientResult::thermalViolations(double t_design_k) const
{
    std::uint32_t n = 0;
    for (const auto &s : trace)
        n += s.max_temp_k > t_design_k;
    return n;
}

TransientRunner::TransientRunner(TransientParams params)
    : params_(params)
{
    if (params_.interval_uops == 0 || params_.num_intervals == 0)
        util::fatal("transient run needs nonzero intervals");
    if (params_.represented_time_s <= 0.0)
        util::fatal("represented_time_s must be positive");
}

TransientResult
TransientRunner::run(const workload::AppProfile &app,
                     const core::Qualification &qual,
                     Policy policy) const
{
    const auto &ladder = dvsLevels();
    // Index of the base (4 GHz) rung.
    std::size_t base_level = 0;
    for (std::size_t i = 0; i < ladder.size(); ++i)
        if (ladder[i].frequency_ghz == 4.0)
            base_level = i;

    workload::TraceGenerator gen(app, params_.seed);
    sim::MachineConfig cfg = sim::baseMachine();
    sim::Core core(cfg, gen);
    core.runUops(params_.warmup_uops);
    core.takeInterval();
    core.resetStats();

    thermal::ThermalModel thermal_model(params_.thermal);
    core::RampEngine engine(qual,
                            power::poweredFractions(cfg));
    DrmController drm_ctl(params_.drm, ladder.size(), base_level);
    DtmController dtm_ctl(params_.dtm, ladder.size(), base_level);

    TransientResult result;
    result.trace.reserve(params_.num_intervals);

    std::size_t level = base_level;
    bool thermal_initialised = false;
    double perf_sum = 0.0;

    for (std::uint32_t i = 0; i < params_.num_intervals; ++i) {
        const DvsLevel &lvl = ladder[level];
        cfg.frequency_ghz = lvl.frequency_ghz;
        cfg.voltage_v = lvl.voltage_v;
        core.setOperatingPoint(lvl.frequency_ghz, lvl.voltage_v);

        core.runUops(params_.interval_uops);
        const auto sample = core.takeInterval();

        const power::PowerModel pmodel(cfg, params_.power);
        const auto dyn = pmodel.dynamicPower(sample);

        // Leakage from the current thermal state (feedback), then
        // advance the RC network holding this interval's power.
        if (!thermal_initialised) {
            sim::PerStructure<double> warm_leak =
                pmodel.leakagePower(thermal_model.blockTemps());
            sim::PerStructure<double> total{};
            for (std::size_t s = 0; s < sim::num_structures; ++s)
                total[s] = dyn[s] + warm_leak[s];
            thermal_model.initialiseSteady(total);
            thermal_initialised = true;
        }
        const auto leak =
            pmodel.leakagePower(thermal_model.blockTemps());
        sim::PerStructure<double> total{};
        for (std::size_t s = 0; s < sim::num_structures; ++s)
            total[s] = dyn[s] + leak[s];
        thermal_model.step(total, params_.represented_time_s);
        const auto temps = thermal_model.blockTemps();

        engine.addInterval(temps, sample.activity, cfg.voltage_v,
                           cfg.frequency_ghz,
                           params_.represented_time_s);

        TransientSample out;
        out.level = level;
        out.frequency_ghz = cfg.frequency_ghz;
        out.voltage_v = cfg.voltage_v;
        out.ipc = sample.ipc();
        out.max_temp_k =
            *std::max_element(temps.begin(), temps.end());
        double power_total = 0.0;
        for (std::size_t s = 0; s < sim::num_structures; ++s)
            power_total += total[s];
        out.total_power_w = power_total;
        out.avg_fit = engine.report().totalFit();
        result.trace.push_back(out);

        result.max_temp_seen_k =
            std::max(result.max_temp_seen_k, out.max_temp_k);
        perf_sum += sample.ipc() * cfg.frequency_ghz * 1e9;

        switch (policy) {
          case Policy::None:
            break;
          case Policy::Drm:
            level = drm_ctl.observe(out.avg_fit);
            break;
          case Policy::Dtm:
            level = dtm_ctl.observe(out.max_temp_k);
            break;
        }
    }

    result.final_avg_fit = engine.report().totalFit();
    result.level_transitions = policy == Policy::Drm
                                   ? drm_ctl.transitions()
                                   : dtm_ctl.transitions();
    result.avg_uops_per_second = perf_sum / params_.num_intervals;
    return result;
}

} // namespace drm
} // namespace ramp
