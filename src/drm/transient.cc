#include "drm/transient.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "fault/fault.hh"
#include "sim/core.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/telemetry.hh"
#include "workload/trace_gen.hh"

namespace ramp {
namespace drm {

namespace {

/** Non-finite per-structure power samples replaced by the previous
 *  interval's finite value before the thermal step. */
telemetry::Counter &
powerHoldCounter()
{
    static telemetry::Counter c =
        telemetry::counter("transient.power_holds");
    return c;
}

} // namespace

std::uint32_t
TransientResult::thermalViolations(double t_design_k) const
{
    std::uint32_t n = 0;
    for (const auto &s : trace)
        n += s.max_temp_k > t_design_k;
    return n;
}

TransientRunner::TransientRunner(TransientParams params)
    : params_(params)
{
    if (params_.interval_uops == 0 || params_.num_intervals == 0)
        util::fatal("transient run needs nonzero intervals");
    if (params_.represented_time_s <= 0.0)
        util::fatal("represented_time_s must be positive");
}

TransientResult
TransientRunner::run(const workload::AppProfile &app,
                     const core::Qualification &qual,
                     Policy policy) const
{
    const auto &ladder = dvsLevels();
    // Index of the base (4 GHz) rung.
    std::size_t base_level = 0;
    for (std::size_t i = 0; i < ladder.size(); ++i)
        if (ladder[i].frequency_ghz == 4.0)
            base_level = i;

    workload::TraceGenerator gen(app, params_.seed);
    sim::MachineConfig cfg = sim::baseMachine();
    sim::Core core(cfg, gen);
    core.runUops(params_.warmup_uops);
    core.takeInterval();
    core.resetStats();

    thermal::ThermalModel thermal_model(params_.thermal);
    core::RampEngine engine(qual,
                            power::poweredFractions(cfg));
    DrmController drm_ctl(params_.drm, ladder.size(), base_level);
    DtmController dtm_ctl(params_.dtm, ladder.size(), base_level);
    SlackBankController slack_ctl(params_.slack, ladder.size(),
                                  base_level);

    // Sensor conditioning in front of each controller. Clean readings
    // pass through bit-exactly, so these change nothing on a
    // fault-free run.
    fault::SensorChannel temp_chan(params_.temp_channel);
    fault::SensorChannel fit_chan(params_.fit_channel);
    const std::size_t failsafe_level =
        std::min(params_.failsafe_level, ladder.size() - 1);

    // Fault injection, armed only when a plan is installed. The
    // sensor streams and the power-NaN injector are serial (one
    // control loop), so per-stream Rngs keep each deterministic in
    // (plan seed, stream name).
    const fault::FaultPlan *plan = fault::activeFaultPlan();
    std::optional<fault::SensorFaulter> temp_faulter;
    std::optional<fault::SensorFaulter> fit_faulter;
    std::optional<util::Rng> power_rng;
    if (plan) {
        temp_faulter.emplace(*plan, "dtm.temp", params_.dtm.t_design_k);
        fit_faulter.emplace(*plan, "drm.fit", params_.drm.target_fit);
        if (plan->enabled(fault::FaultKind::PowerNan))
            power_rng.emplace(
                fault::faultHash(plan->seed, "transient.power"));
    }

    TransientResult result;
    result.trace.reserve(params_.num_intervals);

    std::size_t level = base_level;
    bool thermal_initialised = false;
    double perf_sum = 0.0;
    sim::PerStructure<double> held_power_w{};

    for (std::uint32_t i = 0; i < params_.num_intervals; ++i) {
        const DvsLevel &lvl = ladder[level];
        cfg.frequency_ghz = lvl.frequency_ghz;
        cfg.voltage_v = lvl.voltage_v;
        core.setOperatingPoint(lvl.frequency_ghz, lvl.voltage_v);

        core.runUops(params_.interval_uops);
        const auto sample = core.takeInterval();

        const power::PowerModel pmodel(cfg, params_.power);
        const auto dyn = pmodel.dynamicPower(sample);

        // Leakage from the current thermal state (feedback), then
        // advance the RC network holding this interval's power.
        if (!thermal_initialised) {
            sim::PerStructure<double> warm_leak =
                pmodel.leakagePower(thermal_model.blockTemps());
            sim::PerStructure<double> total{};
            for (std::size_t s = 0; s < sim::num_structures; ++s)
                total[s] = dyn[s] + warm_leak[s];
            thermal_model.initialiseSteady(total);
            thermal_initialised = true;
        }
        const auto leak =
            pmodel.leakagePower(thermal_model.blockTemps());
        sim::PerStructure<double> total{};
        for (std::size_t s = 0; s < sim::num_structures; ++s)
            total[s] = dyn[s] + leak[s];

        if (power_rng &&
            power_rng->chance(
                plan->spec(fault::FaultKind::PowerNan).rate)) {
            total[power_rng->below(sim::num_structures)] =
                std::numeric_limits<double>::quiet_NaN();
            fault::countFault(fault::FaultKind::PowerNan);
            result.degradation.injected_faults += 1;
        }
        // Graceful degradation: a non-finite power sample would poison
        // the RC state for the rest of the run, so hold the structure
        // at its previous finite value instead.
        for (std::size_t s = 0; s < sim::num_structures; ++s) {
            if (std::isfinite(total[s])) {
                held_power_w[s] = total[s];
            } else {
                total[s] = held_power_w[s];
                powerHoldCounter().add();
                result.degradation.power_holds += 1;
            }
        }
        thermal_model.step(total, params_.represented_time_s);
        const auto temps = thermal_model.blockTemps();

        engine.addInterval(temps, sample.activity, cfg.voltage_v,
                           cfg.frequency_ghz,
                           params_.represented_time_s);

        TransientSample out;
        out.level = level;
        out.frequency_ghz = cfg.frequency_ghz;
        out.voltage_v = cfg.voltage_v;
        out.ipc = sample.ipc();
        out.max_temp_k =
            *std::max_element(temps.begin(), temps.end());
        double power_total = 0.0;
        for (std::size_t s = 0; s < sim::num_structures; ++s)
            power_total += total[s];
        out.total_power_w = power_total;
        out.avg_fit = engine.report().totalFit();

        // What the controllers see: the true values, through the
        // faulter (when armed) and the conditioning channel.
        const auto temp_reading = temp_chan.observe(
            temp_faulter ? temp_faulter->apply(out.max_temp_k)
                         : out.max_temp_k);
        const auto fit_reading = fit_chan.observe(
            fit_faulter ? fit_faulter->apply(out.avg_fit)
                        : out.avg_fit);
        out.sensed_temp_k = temp_reading.value;
        out.sensed_fit = fit_reading.value;

        result.max_temp_seen_k =
            std::max(result.max_temp_seen_k, out.max_temp_k);
        perf_sum += sample.ipc() * cfg.frequency_ghz * 1e9;

        // A fail-safe latch overrides the active policy's controller:
        // K consecutive invalid readings mean the control input cannot
        // be trusted, so run at the safest rung until the channel sees
        // enough valid readings to release. (Forced moves are not
        // controller transitions.)
        switch (policy) {
          case Policy::None:
            break;
          case Policy::Drm:
            level = drm_ctl.observe(fit_reading.value);
            if (fit_reading.failsafe)
                level = failsafe_level;
            out.failsafe = fit_reading.failsafe;
            break;
          case Policy::Dtm:
            level = dtm_ctl.observe(temp_reading.value);
            if (temp_reading.failsafe)
                level = failsafe_level;
            out.failsafe = temp_reading.failsafe;
            break;
          case Policy::SlackDrm:
            // Progress through the run's FIT budget window: the
            // allowance decays to the flat target by the last
            // interval.
            level = slack_ctl.observe(
                fit_reading.value,
                static_cast<double>(i + 1) /
                    static_cast<double>(params_.num_intervals));
            if (fit_reading.failsafe)
                level = failsafe_level;
            out.failsafe = fit_reading.failsafe;
            break;
        }
        result.degradation.failsafe_intervals += out.failsafe;
        result.trace.push_back(out);
    }

    result.final_avg_fit = engine.report().totalFit();
    switch (policy) {
      case Policy::None:
      case Policy::Drm:
        result.level_transitions = drm_ctl.transitions();
        break;
      case Policy::Dtm:
        result.level_transitions = dtm_ctl.transitions();
        break;
      case Policy::SlackDrm:
        result.level_transitions = slack_ctl.transitions();
        break;
    }
    result.avg_uops_per_second = perf_sum / params_.num_intervals;

    auto &deg = result.degradation;
    for (const auto *chan : {&temp_chan, &fit_chan}) {
        const auto &st = chan->stats();
        deg.invalid_readings += st.invalid;
        deg.fallbacks += st.fallbacks;
        deg.despiked += st.despiked;
        deg.failsafe_engages += st.engages;
    }
    if (temp_faulter)
        deg.injected_faults += temp_faulter->tally().total();
    if (fit_faulter)
        deg.injected_faults += fit_faulter->tally().total();
    return result;
}

} // namespace drm
} // namespace ramp
