#include "drm/surrogate/model.hh"

#include <cmath>
#include <utility>

#include "drm/oracle.hh"
#include "util/linalg.hh"
#include "util/logging.hh"

namespace ramp {
namespace drm {
namespace surrogate {

namespace {

/** Ridge strength relative to the mean Gram diagonal. Large enough
 *  to regularise collinear knobs (the DVS ladder ties V to f), small
 *  enough not to bias a well-conditioned fit measurably. */
constexpr double ridge_rel = 1e-8;

} // namespace

std::vector<double>
configFeatures(const sim::MachineConfig &cfg)
{
    // Normalise every knob to O(1) around the base machine so the
    // ridge penalty treats them evenly.
    const double f = cfg.frequency_ghz / 4.0;
    const double v = cfg.voltage_v;
    const double w = static_cast<double>(cfg.window_size) / 128.0;
    const double a = static_cast<double>(cfg.num_int_alu) / 6.0;
    const double u = static_cast<double>(cfg.num_fpu) / 4.0;
    const double d = static_cast<double>(cfg.fetch_duty_x8) / 8.0;
    std::vector<double> row{1.0, f, v, w, a, u, d,
                            f * f, w * w, f * w, f * a};
    if (row.size() != feature_count)
        util::panic("configFeatures row does not match feature_count");
    return row;
}

util::Result<ResponseSurface>
ResponseSurface::fit(const std::vector<std::vector<double>> &rows,
                     const std::vector<double> &targets)
{
    const std::size_t n = rows.size();
    const std::size_t m = feature_count;
    if (n != targets.size())
        util::panic("ResponseSurface::fit rows/targets size mismatch");
    if (n < m)
        return util::RampError{
            util::ErrorCode::InvalidInput,
            util::cat("surrogate history too thin: ", n,
                      " samples for ", m, " features")};

    // Ridge would happily "fit" n copies of one point, so a
    // degenerate design has to be rejected explicitly: require at
    // least one feature column that varies across samples.
    bool varies = false;
    for (std::size_t j = 1; j < m && !varies; ++j) {
        for (std::size_t i = 1; i < n; ++i) {
            if (rows[i][j] != rows[0][j]) {
                varies = true;
                break;
            }
        }
    }
    if (!varies)
        return util::RampError{
            util::ErrorCode::InvalidInput,
            util::cat("degenerate surrogate history: all ", n,
                      " samples share one configuration")};

    // Normal equations (X^T X + lambda I) c = X^T y.
    util::Matrix gram(m, m);
    std::vector<double> rhs(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &x = rows[i];
        if (x.size() != m)
            util::panic("ResponseSurface::fit bad feature row width");
        for (std::size_t r = 0; r < m; ++r) {
            rhs[r] += x[r] * targets[i];
            for (std::size_t c = 0; c < m; ++c)
                gram.at(r, c) += x[r] * x[c];
        }
    }
    double diag_mean = 0.0;
    for (std::size_t r = 0; r < m; ++r)
        diag_mean += gram.at(r, r);
    diag_mean /= static_cast<double>(m);
    const double lambda = std::max(ridge_rel * diag_mean, 1e-12);
    for (std::size_t r = 0; r < m; ++r)
        gram.at(r, r) += lambda;

    auto solved = util::trySolveLinear(std::move(gram), std::move(rhs));
    if (!solved)
        return solved.error();

    ResponseSurface surface;
    surface.coef_ = std::move(solved.value());
    for (std::size_t i = 0; i < n; ++i) {
        const double err =
            std::fabs(surface.predict(rows[i]) - targets[i]);
        surface.max_abs_residual_ =
            std::max(surface.max_abs_residual_, err);
    }
    if (!std::isfinite(surface.max_abs_residual_))
        return util::RampError{util::ErrorCode::NonFiniteValue,
                               "non-finite surrogate fit residual"};
    return surface;
}

double
ResponseSurface::predict(const std::vector<double> &row) const
{
    if (row.size() != coef_.size())
        util::panic("ResponseSurface::predict bad feature row width");
    double acc = 0.0;
    for (std::size_t j = 0; j < coef_.size(); ++j)
        acc += coef_[j] * row[j];
    return acc;
}

util::Result<SurrogateModel>
SurrogateModel::fit(std::vector<TrainingSample> samples)
{
    SurrogateModel model;
    model.samples_ = std::move(samples);
    model.rows_.reserve(model.samples_.size());
    std::vector<double> perf;
    std::vector<double> temp;
    perf.reserve(model.samples_.size());
    temp.reserve(model.samples_.size());
    for (const auto &s : model.samples_) {
        model.rows_.push_back(configFeatures(s.op.config));
        perf.push_back(s.perf_rel);
        temp.push_back(s.op.maxTemp());
    }

    auto perf_fit = ResponseSurface::fit(model.rows_, perf);
    if (!perf_fit)
        return perf_fit.error();
    model.perf_ = std::move(perf_fit.value());

    auto temp_fit = ResponseSurface::fit(model.rows_, temp);
    if (!temp_fit)
        return temp_fit.error();
    model.temp_ = std::move(temp_fit.value());
    return model;
}

double
SurrogateModel::predictPerf(const sim::MachineConfig &cfg) const
{
    return perf_.predict(configFeatures(cfg));
}

double
SurrogateModel::predictTempK(const sim::MachineConfig &cfg) const
{
    return temp_.predict(configFeatures(cfg));
}

util::Result<const ResponseSurface *>
SurrogateModel::fitSurface(const core::Qualification &qual)
{
    const double t_qual_k = qual.spec().t_qual_k;
    auto it = fit_surfaces_.find(t_qual_k);
    if (it != fit_surfaces_.end())
        return &it->second;

    // FIT spans orders of magnitude across a DVS ladder (it is
    // exponential in temperature), so fit its logarithm; the floor
    // guards a pathological zero-FIT point.
    std::vector<double> log_fit;
    log_fit.reserve(samples_.size());
    for (const auto &s : samples_)
        log_fit.push_back(
            std::log(std::max(operatingPointFit(qual, s.op), 1e-30)));

    auto fitted = ResponseSurface::fit(rows_, log_fit);
    if (!fitted)
        return fitted.error();
    auto placed =
        fit_surfaces_.emplace(t_qual_k, std::move(fitted.value()));
    return &placed.first->second;
}

util::Result<double>
SurrogateModel::predictFit(const sim::MachineConfig &cfg,
                           const core::Qualification &qual)
{
    auto surface = fitSurface(qual);
    if (!surface)
        return surface.error();
    return std::exp(surface.value()->predict(configFeatures(cfg)));
}

util::Result<double>
SurrogateModel::fitLogResidual(const core::Qualification &qual)
{
    auto surface = fitSurface(qual);
    if (!surface)
        return surface.error();
    return surface.value()->maxAbsResidual();
}

} // namespace surrogate
} // namespace drm
} // namespace ramp
