/**
 * @file
 * The surrogate-mode knob, split out so lightweight layers (the
 * serve wire protocol, bench option parsing) can name a mode without
 * pulling in the tiered explorer machinery (tiered.hh).
 */

#pragma once

#include <optional>
#include <string>

namespace ramp {
namespace drm {
namespace surrogate {

/** How selections use the surrogate fast path. */
enum class SurrogateMode
{
    /** Exhaustive search only (the pre-surrogate behaviour). */
    Off,
    /** Rank on the surrogate, confirm exactly; any gate trip falls
     *  back to exhaustive for that selection. */
    Rank,
    /** Rank, but treat a cold/thin cache as expected warm-up: go
     *  straight to exhaustive (skipping the doomed fit attempt) and
     *  seed the model from that exploration so the next selection
     *  takes the fast path. */
    Auto,
};

/** "off" / "rank" / "auto". */
const char *surrogateModeName(SurrogateMode mode);

/** Inverse of surrogateModeName; nullopt for unknown names. */
std::optional<SurrogateMode>
surrogateModeFromName(const std::string &name);

} // namespace surrogate
} // namespace drm
} // namespace ramp
