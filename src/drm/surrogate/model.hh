/**
 * @file
 * Cheap fitted response surfaces over the adaptation knobs (the
 * NeuroScalar-style learned fast path, done C++-native).
 *
 * A SurrogateModel is trained on a handful of exactly-evaluated
 * operating points of one application and predicts, for any
 * configuration in the space, the three quantities oracle selection
 * ranks on: relative performance, hottest-structure temperature, and
 * application FIT under a qualification. Predictions are a dot
 * product -- no timing simulation, no thermal fixed point -- so a
 * tiered selection can rank a whole space for the cost of a few
 * dozen multiplies per point and reserve exact evaluation for the
 * top-k frontier (drm/surrogate/tiered.hh).
 *
 * The surfaces are ridge-regularised quadratic polynomials over the
 * normalised knobs (V, f, window, ALUs, FPUs, fetch duty), solved
 * with the same dense Gaussian elimination the thermal RC network
 * uses (util/linalg). Ridge keeps the normal equations solvable when
 * knobs are collinear (the DVS ladder ties V to f) or frozen (an
 * Arch-only space never varies V/f). Performance and temperature are
 * qualification-independent and fitted once; FIT depends on T_qual,
 * so its surface is fitted lazily per qualification -- in log space,
 * because FIT is exponential in temperature -- from the *retained*
 * training points, which costs one cheap steadyFit per point and no
 * new simulations.
 *
 * Every fit reports its worst training residual. Callers gate on it:
 * a surface that cannot even reproduce its own training data must
 * not rank candidates (the tiered layer falls back to exhaustive
 * search).
 */

#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "core/evaluator.hh"
#include "core/qualification.hh"
#include "util/error.hh"

namespace ramp {
namespace drm {
namespace surrogate {

/** Number of polynomial terms in configFeatures(). */
inline constexpr std::size_t feature_count = 11;

/**
 * The feature vector of one configuration: an intercept, the
 * normalised knobs, and the quadratic/interaction terms that matter
 * for these responses (performance saturates in window size and
 * bends in frequency because off-chip latencies are fixed physical
 * times).
 */
std::vector<double> configFeatures(const sim::MachineConfig &cfg);

/** One exactly-evaluated training observation. */
struct TrainingSample
{
    core::OperatingPoint op;
    /** Performance relative to the application's base machine. */
    double perf_rel = 0.0;
};

/**
 * One scalar response fitted by ridge least squares. Build via
 * fit(); InvalidInput when there are fewer samples than features or
 * the design matrix is degenerate (every sample identical),
 * SingularSystem when elimination still fails.
 */
class ResponseSurface
{
  public:
    /** Fit targets[i] ~ dot(coef, rows[i]). @p rows are
     *  configFeatures() vectors; all rows identical is degenerate. */
    [[nodiscard]] static util::Result<ResponseSurface>
    fit(const std::vector<std::vector<double>> &rows,
        const std::vector<double> &targets);

    /** Predicted response for one feature row. */
    double predict(const std::vector<double> &row) const;

    /** Largest |prediction - target| over the training set. */
    double maxAbsResidual() const { return max_abs_residual_; }

  private:
    std::vector<double> coef_;
    double max_abs_residual_ = 0.0;
};

/**
 * The per-application model: performance and temperature surfaces
 * plus lazily-fitted per-qualification log-FIT surfaces.
 *
 * Not thread-safe (the lazy FIT-surface memo mutates); confine to
 * one driver thread, as the tiered explorer does.
 */
class SurrogateModel
{
  public:
    /**
     * Train on exactly-evaluated points. Non-converged points must
     * be excluded by the caller (their temperatures are an
     * unconverged iterate). InvalidInput when the history is too
     * thin (< feature_count samples) or degenerate.
     */
    [[nodiscard]] static util::Result<SurrogateModel>
    fit(std::vector<TrainingSample> samples);

    std::size_t sampleCount() const { return samples_.size(); }

    /** Predicted perf_rel for a configuration. */
    double predictPerf(const sim::MachineConfig &cfg) const;

    /** Predicted hottest-structure temperature (K). */
    double predictTempK(const sim::MachineConfig &cfg) const;

    /**
     * Predicted application FIT under @p qual. The log-FIT surface
     * for this qualification temperature is fitted on first use from
     * the retained training points (cheap steadyFit calls, no
     * simulation); a degenerate refit surfaces as an error.
     */
    [[nodiscard]] util::Result<double> predictFit(const sim::MachineConfig &cfg,
                                    const core::Qualification &qual);

    /** Worst training residual of the perf surface (perf_rel). */
    double perfResidual() const { return perf_.maxAbsResidual(); }

    /** Worst training residual of the temperature surface (K). */
    double tempResidualK() const { return temp_.maxAbsResidual(); }

    /**
     * Worst training residual of the log-FIT surface for @p qual
     * (natural-log units; 0.1 ~ 10% relative FIT error). Fits the
     * surface on first use, like predictFit.
     */
    [[nodiscard]] util::Result<double> fitLogResidual(const core::Qualification &qual);

  private:
    [[nodiscard]] util::Result<const ResponseSurface *>
    fitSurface(const core::Qualification &qual);

    std::vector<TrainingSample> samples_;
    std::vector<std::vector<double>> rows_; ///< One per sample.
    ResponseSurface perf_;
    ResponseSurface temp_;
    /** Log-FIT surface per qualification temperature (K). */
    std::map<double, ResponseSurface> fit_surfaces_;
};

} // namespace surrogate
} // namespace drm
} // namespace ramp
