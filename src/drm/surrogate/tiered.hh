/**
 * @file
 * Tiered oracle selection: surrogate-ranked, exactly-confirmed.
 *
 * Exhaustive oracle selection evaluates every configuration in the
 * adaptation space with a timing+thermal simulation before picking a
 * winner. The tiered path replaces almost all of those with
 * predictions from a fitted response surface (drm/surrogate/model.hh)
 * and spends exact simulations on three things only:
 *
 *   1. a small training set drawn from EvaluationCache history (these
 *      are cache hits -- cheap thermal re-convergence, no timing
 *      simulation),
 *   2. the top-k predicted-feasible frontier, and
 *   3. a safety margin band: every unevaluated point whose predicted
 *      performance and constraint land within the fit's residual-
 *      derived margins of the current winner.
 *
 * Selection then runs the *unmodified* drm::selectDrm/selectDtm over
 * the partial exploration (unevaluated points marked invalid, exactly
 * as failed evaluations are). The confirm loop repeats -- select,
 * widen, evaluate -- until no unevaluated candidate could displace
 * the winner under the margins, so the chosen point is built from the
 * same exact evaluations, compared by the same code, with the same
 * tie-breaking, as exhaustive search: the winner is bit-identical
 * whenever the margins cover the surrogate's true error (asserted on
 * the full fig2/fig4 spaces in ctest).
 *
 * Anything that undermines the model -- cold cache, thin or
 * degenerate history, a training residual past its gate -- falls
 * back to plain exhaustive exploration and bumps
 * surrogate.fallbacks. The fallback is the exact path, so falling
 * back is always safe, never wrong.
 *
 * Not thread-safe: confine one TieredExplorer to one driver thread
 * (exact evaluations inside still fan out through the
 * OracleExplorer's pool on the exhaustive path).
 */

#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "drm/oracle.hh"
#include "drm/surrogate/mode.hh"
#include "drm/surrogate/model.hh"

namespace ramp {
namespace drm {
namespace surrogate {

/** Tiered-selection tuning. Defaults hold the bit-identity guarantee
 *  on the fig2/fig4 spaces with ~10x fewer exact simulations. */
struct TieredOptions
{
    SurrogateMode mode = SurrogateMode::Rank;

    /** Training points drawn from history (spread evenly across the
     *  space). At least feature_count, or no surface can fit. */
    std::size_t train_max = 20;

    /** Minimum usable history; below this the selection falls back
     *  (cold-cache / thin-history). */
    std::size_t train_min = 12;

    /** Residual gates: a surface whose worst training residual
     *  exceeds its gate must not rank candidates. */
    double residual_perf_max = 0.05;   ///< perf_rel units.
    double residual_temp_max_k = 5.0;  ///< Kelvin.
    double residual_log_fit_max = 1.0; ///< ln(FIT) units.

    /** Safety margins around the current winner when picking
     *  confirmation candidates; each is widened by twice the fitted
     *  surface's training residual. */
    double margin_perf_rel = 0.04;
    double margin_temp_k = 3.0;
    double margin_log_fit = 0.4;

    /** Best predicted-feasible points always confirmed exactly,
     *  margins aside. */
    std::size_t confirm_top_k = 4;
};

/** One tiered selection plus its cost accounting. */
struct TieredSelection
{
    Selection selection;

    /** Configurations in the adaptation space. */
    std::size_t space_points = 0;

    /** Exact evaluations issued by THIS call (training + confirms,
     *  or the whole space on the exhaustive path). Points memoized
     *  by earlier selections on the same (app, space) cost nothing
     *  and are not counted. */
    std::size_t exact_evals = 0;

    /** Surrogate predictions made (3 responses per ranked point). */
    std::size_t ranked_points = 0;

    /** Select/widen/evaluate rounds until no candidate remained. */
    std::size_t confirm_rounds = 0;

    /** False when this selection ran the exhaustive path. */
    bool used_surrogate = false;

    /** Why the exhaustive path ran ("cold-cache", "thin-history",
     *  "degenerate-history", "residual", "auto-warmup",
     *  "no-valid-training", "off"); empty when used_surrogate. */
    std::string fallback_reason;
};

/**
 * Serves tiered selections over an OracleExplorer, memoizing exact
 * evaluations and fitted models per (application, space) so a sweep
 * over qualification temperatures pays for training once.
 */
class TieredExplorer
{
  public:
    /** @p explorer and @p cache must outlive this object. @p cache
     *  may be null (no history: rank mode always falls back until
     *  an exhaustive pass has filled the memo). */
    explicit TieredExplorer(const OracleExplorer &explorer,
                            EvaluationCache *cache,
                            TieredOptions opts = {});

    /** Tiered drm::selectDrm: best perf subject to FIT <= target. */
    TieredSelection selectDrm(const workload::AppProfile &app,
                              AdaptationSpace space,
                              const core::Qualification &qual);

    /** Tiered drm::selectDtm: best perf subject to temp <= design. */
    TieredSelection selectDtm(const workload::AppProfile &app,
                              AdaptationSpace space, double t_design_k,
                              const core::Qualification &qual);

    const TieredOptions &options() const { return opts_; }
    void setOptions(TieredOptions opts) { opts_ = std::move(opts); }

  private:
    /** Per-(app, space) memo: the config list, base point, fitted
     *  model, and every exact evaluation issued so far. */
    struct SpaceState
    {
        std::vector<sim::MachineConfig> cfgs;
        core::OperatingPoint base;
        double base_perf_uops_s = 0.0;
        std::optional<SurrogateModel> model;
        /** Exactly-evaluated points by config index; nullopt =
         *  not yet evaluated. */
        std::vector<std::optional<ExploredPoint>> points;
    };

    struct Policy
    {
        bool drm = false;     ///< selectDrm (else selectDtm).
        double t_design_k = 0.0;
    };

    TieredSelection select(const workload::AppProfile &app,
                           AdaptationSpace space,
                           const core::Qualification &qual,
                           const Policy &policy);

    SpaceState &stateFor(const workload::AppProfile &app,
                         AdaptationSpace space);

    /** Exact-evaluate config @p i unless memoized; returns whether a
     *  new evaluation was issued (counted by the caller). */
    bool ensureEvaluated(SpaceState &state,
                         const workload::AppProfile &app,
                         std::size_t i);

    /** Exhaustive fallback: evaluate the whole space (through the
     *  explorer's pool) and run the exact selection. */
    TieredSelection exhaustive(SpaceState &state,
                               const workload::AppProfile &app,
                               AdaptationSpace space,
                               const core::Qualification &qual,
                               const Policy &policy,
                               const std::string &reason);

    /** Fit (or reuse) the model for @p state; empty optional plus a
     *  reason string when a gate trips. */
    std::optional<std::string>
    ensureModel(SpaceState &state, const workload::AppProfile &app,
                TieredSelection &result);

    const OracleExplorer &explorer_;
    EvaluationCache *cache_;
    TieredOptions opts_;
    std::map<std::pair<std::string, AdaptationSpace>, SpaceState>
        spaces_;
};

} // namespace surrogate
} // namespace drm
} // namespace ramp
