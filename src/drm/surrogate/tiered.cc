#include "drm/surrogate/tiered.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace drm {
namespace surrogate {

namespace {

struct SurrogateMetrics
{
    /** Models fitted (perf+temp surfaces; per-qual FIT surfaces are
     *  folded into the same fit). */
    telemetry::Counter fits = telemetry::counter("surrogate.fits");
    /** Tiered selections served by the surrogate fast path. */
    telemetry::Counter selections =
        telemetry::counter("surrogate.selections");
    /** Candidate points ranked by prediction. */
    telemetry::Counter rank_points =
        telemetry::counter("surrogate.rank_points");
    /** Exact evaluations spent training models (all cache history). */
    telemetry::Counter train_evals =
        telemetry::counter("surrogate.train_evals");
    /** Exact evaluations spent confirming the predicted frontier. */
    telemetry::Counter exact_confirms =
        telemetry::counter("surrogate.exact_confirms");
    /** Exact simulations a tiered selection did NOT issue, vs the
     *  exhaustive path's one-per-space-point. */
    telemetry::Counter exact_sims_saved =
        telemetry::counter("surrogate.exact_sims_saved");
    /** Selections that ran the exhaustive path while a surrogate
     *  mode was on (cold cache, degenerate history, residual gate,
     *  auto warm-up...). */
    telemetry::Counter fallbacks =
        telemetry::counter("surrogate.fallbacks");
};

SurrogateMetrics &
surrogateMetrics()
{
    static SurrogateMetrics m;
    return m;
}

/** The partial exploration the selection policies run over:
 *  unevaluated points are invalid, exactly like failed ones. */
ExploredApp
partialApp(const std::string &app_name,
           const core::OperatingPoint &base,
           const std::vector<std::optional<ExploredPoint>> &points)
{
    ExploredApp out;
    out.app_name = app_name;
    out.base = base;
    out.points.reserve(points.size());
    for (const auto &p : points) {
        if (p) {
            out.points.push_back(*p);
        } else {
            ExploredPoint missing;
            missing.valid = false;
            out.points.push_back(missing);
        }
    }
    return out;
}

/** Whether any evaluated point can participate in the policy (DRM
 *  needs a valid converged point; DTM only a valid one). Running a
 *  selection with none would be fatal in selectByConstraint. */
bool
hasSelectablePoint(const std::vector<std::optional<ExploredPoint>> &pts,
                   bool require_converged)
{
    for (const auto &p : pts)
        if (p && p->valid && (!require_converged || p->op.converged))
            return true;
    return false;
}

Selection
runPolicy(const ExploredApp &app, const core::Qualification &qual,
          bool drm, double t_design_k)
{
    return drm ? selectDrm(app, qual)
               : selectDtm(app, t_design_k, qual);
}

} // namespace

const char *
surrogateModeName(SurrogateMode mode)
{
    switch (mode) {
    case SurrogateMode::Off:
        return "off";
    case SurrogateMode::Rank:
        return "rank";
    case SurrogateMode::Auto:
        return "auto";
    }
    util::panic("surrogateModeName: bad mode");
}

std::optional<SurrogateMode>
surrogateModeFromName(const std::string &name)
{
    if (name == "off")
        return SurrogateMode::Off;
    if (name == "rank")
        return SurrogateMode::Rank;
    if (name == "auto")
        return SurrogateMode::Auto;
    return std::nullopt;
}

TieredExplorer::TieredExplorer(const OracleExplorer &explorer,
                               EvaluationCache *cache,
                               TieredOptions opts)
    : explorer_(explorer), cache_(cache), opts_(std::move(opts))
{
    if (opts_.train_max < feature_count)
        util::fatal(util::cat("TieredOptions::train_max (",
                              opts_.train_max, ") below the ",
                              feature_count, "-term feature basis"));
}

TieredSelection
TieredExplorer::selectDrm(const workload::AppProfile &app,
                          AdaptationSpace space,
                          const core::Qualification &qual)
{
    Policy policy;
    policy.drm = true;
    return select(app, space, qual, policy);
}

TieredSelection
TieredExplorer::selectDtm(const workload::AppProfile &app,
                          AdaptationSpace space, double t_design_k,
                          const core::Qualification &qual)
{
    Policy policy;
    policy.drm = false;
    policy.t_design_k = t_design_k;
    return select(app, space, qual, policy);
}

TieredExplorer::SpaceState &
TieredExplorer::stateFor(const workload::AppProfile &app,
                         AdaptationSpace space)
{
    auto key = std::make_pair(app.name, space);
    auto it = spaces_.find(key);
    if (it != spaces_.end())
        return it->second;

    SpaceState state;
    state.cfgs = configSpace(space);
    state.base = explorer_.evaluateBase(app);
    state.base_perf_uops_s = state.base.uopsPerSecond();
    state.points.resize(state.cfgs.size());
    return spaces_.emplace(std::move(key), std::move(state))
        .first->second;
}

bool
TieredExplorer::ensureEvaluated(SpaceState &state,
                                const workload::AppProfile &app,
                                std::size_t i)
{
    if (state.points[i])
        return false;
    auto result = explorer_.tryEvaluate(state.cfgs[i], app);
    ExploredPoint pt;
    if (result) {
        pt.op = std::move(result.value());
        pt.perf_rel = pt.op.uopsPerSecond() / state.base_perf_uops_s;
    } else {
        // Same contract as OracleExplorer::explore: a failed point is
        // dropped (valid = false), and the decision is a pure
        // function of the point, so the tiered and exhaustive paths
        // drop identical sets.
        pt.valid = false;
        util::warn(util::cat("surrogate: dropped point ", i, " for ",
                             app.name, ": ", result.error().str()));
    }
    state.points[i] = std::move(pt);
    return true;
}

TieredSelection
TieredExplorer::exhaustive(SpaceState &state,
                           const workload::AppProfile &app,
                           AdaptationSpace space,
                           const core::Qualification &qual,
                           const Policy &policy,
                           const std::string &reason)
{
    TieredSelection out;
    out.space_points = state.cfgs.size();
    out.used_surrogate = false;
    out.fallback_reason = reason;

    std::size_t missing = 0;
    for (const auto &p : state.points)
        if (!p)
            ++missing;

    if (missing > 0) {
        // Evaluate through explore() so the work fans out across the
        // explorer's pool with its deterministic rep/rest key
        // ordering; already-memoized points re-derive bit-identically
        // from the cache, so overwriting them is a no-op.
        ExploredApp full = explorer_.explore(app, space);
        for (std::size_t i = 0; i < full.points.size(); ++i)
            state.points[i] = std::move(full.points[i]);
        out.exact_evals = missing;
    }

    if (reason != "off") {
        auto &metrics = surrogateMetrics();
        metrics.fallbacks.add();
        util::warn(util::cat("surrogate: exhaustive fallback for ",
                             app.name, "/", adaptationSpaceName(space),
                             " (", reason, ")"));
        // Auto mode treats the exhaustive pass as designed warm-up:
        // seed the model from it now (zero extra simulations) so the
        // next selection takes the fast path.
        if (opts_.mode == SurrogateMode::Auto && !state.model) {
            TieredSelection seeded; // counters only; discarded
            ensureModel(state, app, seeded);
        }
    }

    const ExploredApp full =
        partialApp(app.name, state.base, state.points);
    out.selection = runPolicy(full, qual, policy.drm,
                              policy.t_design_k);
    return out;
}

std::optional<std::string>
TieredExplorer::ensureModel(SpaceState &state,
                            const workload::AppProfile &app,
                            TieredSelection &result)
{
    if (state.model)
        return std::nullopt;

    // History = everything memoized plus everything the cache already
    // holds a timing record for. The DVS rungs of one architecture
    // share a timing key, so a single cached simulation puts its
    // whole ladder within reach (evaluating a rung is then only a
    // cheap thermal re-convergence).
    std::vector<std::size_t> history;
    const auto &params = explorer_.evaluator().params();
    for (std::size_t i = 0; i < state.cfgs.size(); ++i) {
        if (state.points[i]) {
            history.push_back(i);
        } else if (cache_ &&
                   cache_->contains(EvaluationCache::key(
                       state.cfgs[i], app, params))) {
            history.push_back(i);
        }
    }
    if (history.empty())
        return "cold-cache";
    if (history.size() < opts_.train_min)
        return "thin-history";

    // Deterministic, evenly-spread training subset: knob coverage
    // matters more than sample count for a quadratic surface.
    std::vector<std::size_t> train;
    const std::size_t want = std::min(opts_.train_max, history.size());
    for (std::size_t j = 0; j < want; ++j) {
        const std::size_t pick =
            history[(j * (history.size() - 1)) /
                    (want > 1 ? want - 1 : 1)];
        if (train.empty() || train.back() != pick)
            train.push_back(pick);
    }

    auto &metrics = surrogateMetrics();
    std::vector<TrainingSample> samples;
    for (std::size_t i : train) {
        if (ensureEvaluated(state, app, i)) {
            ++result.exact_evals;
            metrics.train_evals.add();
        }
        const ExploredPoint &pt = *state.points[i];
        // Failed or non-converged points cannot train: their
        // temperatures are absent or an unconverged iterate.
        if (pt.valid && pt.op.converged) {
            TrainingSample s;
            s.op = pt.op;
            s.perf_rel = pt.perf_rel;
            samples.push_back(std::move(s));
        }
    }

    auto fitted = SurrogateModel::fit(std::move(samples));
    if (!fitted) {
        const bool degenerate =
            fitted.error().code == util::ErrorCode::InvalidInput &&
            fitted.error().message.find("degenerate") !=
                std::string::npos;
        return degenerate ? "degenerate-history" : "thin-history";
    }
    state.model = std::move(fitted.value());
    metrics.fits.add();

    if (state.model->perfResidual() > opts_.residual_perf_max ||
        state.model->tempResidualK() > opts_.residual_temp_max_k) {
        util::warn(util::cat(
            "surrogate: residual gate tripped for ", app.name,
            " (perf ", state.model->perfResidual(), ", temp ",
            state.model->tempResidualK(), " K)"));
        state.model.reset();
        return "residual";
    }
    return std::nullopt;
}

TieredSelection
TieredExplorer::select(const workload::AppProfile &app,
                       AdaptationSpace space,
                       const core::Qualification &qual,
                       const Policy &policy)
{
    SpaceState &state = stateFor(app, space);

    if (opts_.mode == SurrogateMode::Off)
        return exhaustive(state, app, space, qual, policy, "off");

    TieredSelection out;
    out.space_points = state.cfgs.size();

    if (opts_.mode == SurrogateMode::Auto && !state.model) {
        // Warm-up probe: with too little history the fit attempt is
        // doomed, so skip straight to the exhaustive pass (which
        // seeds the model for next time).
        std::size_t known = 0;
        const auto &params = explorer_.evaluator().params();
        for (std::size_t i = 0; i < state.cfgs.size(); ++i)
            if (state.points[i] ||
                (cache_ && cache_->contains(EvaluationCache::key(
                               state.cfgs[i], app, params))))
                ++known;
        if (known < opts_.train_min)
            return exhaustive(state, app, space, qual, policy,
                              "auto-warmup");
    }

    if (auto reason = ensureModel(state, app, out)) {
        TieredSelection fell = exhaustive(state, app, space, qual,
                                          policy, *reason);
        fell.exact_evals += out.exact_evals; // count training spend
        return fell;
    }
    SurrogateModel &model = *state.model;

    auto &metrics = surrogateMetrics();
    const std::size_t n = state.cfgs.size();

    // Rank every point: predicted perf plus the policy's predicted
    // constraint (FIT for DRM, hottest temperature for DTM).
    std::vector<double> perf_hat(n, 0.0);
    std::vector<double> cons_hat(n, 0.0);
    double cons_margin = 0.0;
    double cons_limit = 0.0;
    bool log_constraint = policy.drm;
    if (policy.drm) {
        auto residual = model.fitLogResidual(qual);
        if (!residual || residual.value() > opts_.residual_log_fit_max) {
            if (residual)
                util::warn(util::cat(
                    "surrogate: log-FIT residual gate tripped for ",
                    app.name, " (", residual.value(), ")"));
            TieredSelection fell = exhaustive(state, app, space, qual,
                                              policy, "residual");
            fell.exact_evals += out.exact_evals;
            return fell;
        }
        cons_margin = opts_.margin_log_fit + 2.0 * residual.value();
        cons_limit = std::log(qual.spec().target_fit);
        for (std::size_t i = 0; i < n; ++i) {
            perf_hat[i] = model.predictPerf(state.cfgs[i]);
            // predictFit cannot fail here: fitSurface is memoized
            // from the residual probe above.
            cons_hat[i] = std::log(std::max(
                model.predictFit(state.cfgs[i], qual).value(),
                1e-30));
        }
    } else {
        cons_margin =
            opts_.margin_temp_k + 2.0 * model.tempResidualK();
        cons_limit = policy.t_design_k;
        for (std::size_t i = 0; i < n; ++i) {
            perf_hat[i] = model.predictPerf(state.cfgs[i]);
            cons_hat[i] = model.predictTempK(state.cfgs[i]);
        }
    }
    const double perf_margin =
        opts_.margin_perf_rel + 2.0 * model.perfResidual();
    out.ranked_points = n;
    metrics.rank_points.add(n);

    // Seed the evaluated set with the top-k predicted-feasible
    // frontier so the first partial selection starts near the true
    // winner even when the training points are all low performers.
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < n; ++i)
        if (cons_hat[i] <= cons_limit + cons_margin)
            frontier.push_back(i);
    std::sort(frontier.begin(), frontier.end(),
              [&](std::size_t a, std::size_t b) {
                  return perf_hat[a] > perf_hat[b];
              });
    if (frontier.size() > opts_.confirm_top_k)
        frontier.resize(opts_.confirm_top_k);
    for (std::size_t i : frontier) {
        if (ensureEvaluated(state, app, i)) {
            ++out.exact_evals;
            metrics.exact_confirms.add();
        }
    }

    if (!hasSelectablePoint(state.points, policy.drm)) {
        TieredSelection fell = exhaustive(state, app, space, qual,
                                          policy, "no-valid-training");
        fell.exact_evals += out.exact_evals;
        return fell;
    }

    // Confirm loop: select over the partial exploration, then
    // exactly evaluate every unevaluated point whose predictions
    // leave it able to displace the winner under the margins.
    // Each round strictly shrinks the unevaluated candidate set, so
    // the loop terminates; on exit, no unevaluated point can beat
    // the winner unless the surrogate is off by more than its
    // margins (the bit-identity tests pin that on the fig spaces).
    Selection sel;
    while (true) {
        ++out.confirm_rounds;
        const ExploredApp partial =
            partialApp(app.name, state.base, state.points);
        sel = runPolicy(partial, qual, policy.drm, policy.t_design_k);

        double least_violation = 1e300;
        for (std::size_t i = 0; i < n; ++i) {
            const auto &row = sel.table[i];
            if (row.valid && state.points[i])
                least_violation =
                    std::min(least_violation,
                             policy.drm ? row.fit : row.max_temp_k);
        }
        if (log_constraint && least_violation > 0.0)
            least_violation = std::log(least_violation);

        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < n; ++i) {
            if (state.points[i])
                continue;
            // A hidden feasible point beats the winner only with
            // more performance (feasible case) or by existing at all
            // (infeasible case, where any feasible point wins).
            const bool maybe_feasible =
                cons_hat[i] <= cons_limit + cons_margin;
            const bool maybe_faster =
                perf_hat[i] >= sel.perf_rel - perf_margin;
            if (sel.feasible) {
                if (maybe_feasible && maybe_faster)
                    candidates.push_back(i);
            } else {
                // Nothing feasible found yet: confirm would-be
                // feasible points of any performance, and points
                // that could be a less-violating fallback.
                const bool maybe_closer =
                    cons_hat[i] <= least_violation + cons_margin;
                if (maybe_feasible || maybe_closer)
                    candidates.push_back(i);
            }
        }
        if (candidates.empty())
            break;
        for (std::size_t i : candidates) {
            if (ensureEvaluated(state, app, i)) {
                ++out.exact_evals;
                metrics.exact_confirms.add();
            }
        }
    }

    out.selection = std::move(sel);
    out.used_surrogate = true;
    metrics.selections.add();
    if (out.space_points > out.exact_evals)
        metrics.exact_sims_saved.add(out.space_points -
                                     out.exact_evals);
    return out;
}

} // namespace surrogate
} // namespace drm
} // namespace ramp
