#include "drm/intra_app.hh"

#include <cmath>
#include <unordered_set>

#include "power/power.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ramp {
namespace drm {

namespace {

/** A profile restricted to one phase of the parent application. */
workload::AppProfile
phaseProfile(const workload::AppProfile &app, std::size_t phase)
{
    workload::AppProfile p = app;
    p.name = app.name + "#p" + std::to_string(phase);
    p.phases = {app.phases[phase]};
    return p;
}

} // namespace

IntraAppExplorer::IntraAppExplorer(core::EvalParams eval_params,
                                   EvaluationCache *cache,
                                   util::ThreadPool *pool)
    : eval_params_(eval_params), cache_(cache), pool_(pool)
{
}

IntraAppResult
IntraAppExplorer::explore(const workload::AppProfile &app,
                          const core::Qualification &qual) const
{
    const auto &ladder = dvsLevels();
    const std::size_t num_phases = app.phases.size();
    if (num_phases > 4)
        util::fatal("intra-app exploration enumerates rung "
                    "assignments; more than 4 phases is intractable");

    const OracleExplorer explorer(eval_params_, cache_);

    // Per-phase, per-rung evaluation: ipc and FIT of each phase held
    // at each rung. The grid cells are independent, so they fan out
    // across the pool; results land by (phase, rung) index and, as in
    // OracleExplorer::explore, one representative per unique timing
    // key runs first so a cold cache performs exactly the serial
    // sweep's simulations (bit-identical output, no duplicated work).
    struct PhaseRung
    {
        double ipc;
        double fit;
    };
    std::vector<std::vector<PhaseRung>> table(
        num_phases, std::vector<PhaseRung>(ladder.size()));
    std::vector<workload::AppProfile> profiles;
    profiles.reserve(num_phases);
    for (std::size_t ph = 0; ph < num_phases; ++ph)
        profiles.push_back(phaseProfile(app, ph));

    auto rungConfig = [&](std::size_t rung) {
        sim::MachineConfig cfg = sim::baseMachine();
        cfg.frequency_ghz = ladder[rung].frequency_ghz;
        cfg.voltage_v = ladder[rung].voltage_v;
        return cfg;
    };

    struct Job
    {
        std::size_t ph, rung;
    };
    std::vector<Job> reps, rest;
    std::unordered_set<std::string> seen_keys;
    for (std::size_t ph = 0; ph < num_phases; ++ph) {
        for (std::size_t rung = 0; rung < ladder.size(); ++rung) {
            bool first = true;
            if (cache_)
                first = seen_keys
                            .insert(EvaluationCache::key(
                                rungConfig(rung), profiles[ph],
                                eval_params_))
                            .second;
            (first ? reps : rest).push_back({ph, rung});
        }
    }

    auto evalJob = [&](const Job &j) {
        const auto op =
            explorer.evaluate(rungConfig(j.rung), profiles[j.ph]);
        table[j.ph][j.rung] = {op.ipc(), operatingPointFit(qual, op)};
    };
    auto runJobs = [&](const std::vector<Job> &jobs) {
        if (pool_) {
            const auto batch =
                pool_->parallelFor(jobs.size(), [&](std::size_t n) {
                    evalJob(jobs[n]);
                });
            if (!batch.ok())
                throw util::RampException(
                    batch.failures.front().second);
        } else {
            for (const auto &j : jobs)
                evalJob(j);
        }
    };
    runJobs(reps);
    runJobs(rest);

    // Phase-composed performance and FIT of an assignment; weights
    // are phase wall-times, which depend on the chosen frequencies.
    auto evaluate_assignment =
        [&](const std::vector<std::size_t> &assign, double &fit_out) {
            double total_time = 0.0;
            double total_uops = 0.0;
            double fit_time = 0.0;
            for (std::size_t ph = 0; ph < num_phases; ++ph) {
                const auto &pr = table[ph][assign[ph]];
                const double uops =
                    static_cast<double>(app.phases[ph].length_uops);
                const double rate =
                    pr.ipc * ladder[assign[ph]].frequency_ghz * 1e9;
                const double t = uops / rate;
                total_time += t;
                total_uops += uops;
                fit_time += pr.fit * t;
            }
            fit_out = fit_time / total_time;
            return total_uops / total_time;
        };

    // The normalisation point: every phase at the base 4 GHz rung.
    std::size_t base_rung = 0;
    for (std::size_t i = 0; i < ladder.size(); ++i)
        if (ladder[i].frequency_ghz == 4.0)
            base_rung = i;
    double base_fit = 0.0;
    const double base_perf = evaluate_assignment(
        std::vector<std::size_t>(num_phases, base_rung), base_fit);

    // Enumerate rung assignments.
    const double target = qual.spec().target_fit;
    std::vector<std::size_t> assign(num_phases, 0);
    std::vector<std::size_t> best_assign(num_phases, 0);
    std::vector<std::size_t> fallback_assign(num_phases, 0);
    double best_perf = -1.0;
    double best_fit = 0.0;
    double fallback_fit = 1e300;
    bool feasible = false;

    // The per-application baseline: the best *uniform* assignment
    // (one rung for the whole run -- the paper's Section 5 oracle),
    // evaluated on the same phase-composed basis.
    std::size_t uniform_best = 0;
    double uniform_perf = -1.0;
    double uniform_fit = 0.0;
    std::size_t uniform_coolest = 0;
    double uniform_coolest_fit = 1e300;
    bool uniform_feasible = false;

    const auto combos = static_cast<std::size_t>(
        std::pow(static_cast<double>(ladder.size()),
                 static_cast<double>(num_phases)));
    for (std::size_t combo = 0; combo < combos; ++combo) {
        std::size_t digits = combo;
        bool uniform = true;
        for (std::size_t ph = 0; ph < num_phases; ++ph) {
            assign[ph] = digits % ladder.size();
            digits /= ladder.size();
            uniform &= assign[ph] == assign[0];
        }

        double fit = 0.0;
        const double perf = evaluate_assignment(assign, fit);

        if (fit < fallback_fit) {
            fallback_fit = fit;
            fallback_assign = assign;
        }
        if (fit <= target && perf > best_perf) {
            best_perf = perf;
            best_fit = fit;
            best_assign = assign;
            feasible = true;
        }
        if (uniform) {
            if (fit < uniform_coolest_fit) {
                uniform_coolest_fit = fit;
                uniform_coolest = assign[0];
            }
            if (fit <= target && perf > uniform_perf) {
                uniform_perf = perf;
                uniform_fit = fit;
                uniform_best = assign[0];
                uniform_feasible = true;
            }
        }
    }

    IntraAppResult out;
    out.per_app.feasible = uniform_feasible;
    if (uniform_feasible) {
        out.per_app.index = uniform_best;
        out.per_app.perf_rel = uniform_perf / base_perf;
        out.per_app.fit = uniform_fit;
    } else {
        out.per_app.index = uniform_coolest;
        double f = 0.0;
        out.per_app.perf_rel =
            evaluate_assignment(std::vector<std::size_t>(
                                    num_phases, uniform_coolest),
                                f) /
            base_perf;
        out.per_app.fit = f;
    }

    out.feasible = feasible;
    if (feasible) {
        out.rung_per_phase = best_assign;
        out.fit = best_fit;
        out.perf_rel = best_perf / base_perf;
    } else {
        out.rung_per_phase = fallback_assign;
        out.fit = fallback_fit;
        double f = 0.0;
        out.perf_rel =
            evaluate_assignment(fallback_assign, f) / base_perf;
    }
    return out;
}

} // namespace drm
} // namespace ramp
