/**
 * @file
 * The DRM adaptation spaces (paper Sections 5 and 6.1).
 *
 * Three response repertoires are evaluated:
 *  - Arch: 18 microarchitectural configurations (combinations of
 *    instruction-window size and functional-unit counts) from the
 *    full 128-entry/6-ALU/4-FPU machine down to 16-entry/2-ALU/1-FPU,
 *    always at the base voltage and frequency. Issue width tracks the
 *    active FU count; powered-down units take their selection logic,
 *    result buses, and ports with them (modelled via powered-on
 *    fractions).
 *  - DVS: frequency from 2.5 to 5.0 GHz on the most aggressive
 *    microarchitecture, with the voltage-frequency relation
 *    extrapolated from the Pentium-M: V(f) = 0.6 + 0.1 * f(GHz),
 *    giving 1.0 V at the 4 GHz base point.
 *  - ArchDVS: the cross product.
 */

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/machine.hh"

namespace ramp {
namespace drm {

/** One DVS operating point. */
struct DvsLevel
{
    double frequency_ghz;
    double voltage_v;
};

/** Pentium-M-extrapolated supply voltage for a frequency (GHz). */
double dvsVoltage(double frequency_ghz);

/**
 * The DVS ladder: 2.5 to 5.0 GHz in 0.25 GHz steps (11 levels),
 * sorted by ascending frequency. Index 6 is the 4.0 GHz base point.
 */
const std::vector<DvsLevel> &dvsLevels();

/**
 * The 18 microarchitectural configurations: window sizes
 * {128, 96, 64, 48, 32, 16} crossed with functional-unit pools
 * {6 ALU + 4 FPU, 4 ALU + 2 FPU, 2 ALU + 1 FPU}, at base V/f.
 * The first entry is the base (most aggressive) machine.
 */
const std::vector<sim::MachineConfig> &archConfigs();

/** Which repertoire a DRM run may draw from. */
enum class AdaptationSpace {
    Arch,          ///< Microarchitecture only, base V/f.
    Dvs,           ///< Voltage/frequency only, base microarch.
    ArchDvs,       ///< Cross product.
    FetchThrottle, ///< Front-end duty cycling (classic DTM response).
};

/** Name for reports. */
const char *adaptationSpaceName(AdaptationSpace s);

/** Inverse of adaptationSpaceName (exact match); nullopt for unknown
 *  names. Used by the serving protocol to parse request fields. */
std::optional<AdaptationSpace>
adaptationSpaceFromName(std::string_view name);

/** All machine configurations in a space (base machine included). */
std::vector<sim::MachineConfig> configSpace(AdaptationSpace space);

} // namespace drm
} // namespace ramp

