#include "drm/adaptation.hh"

#include <cmath>

#include "util/logging.hh"

namespace ramp {
namespace drm {

double
dvsVoltage(double frequency_ghz)
{
    // Linear extrapolation of the Pentium-M (Centrino) V-f table,
    // re-anchored at the paper's 65 nm base point (4 GHz, 1.0 V):
    // dV/df = 0.1 V/GHz below the base clock. Above the base clock
    // the part is already at the process nominal supply and
    // overclocked bins only add a small guard band (0.025 V/GHz):
    // with the full slope, the TDDB factor (1/V)^{a-bT} ~ V^108 would
    // make every overclocked point blow the FIT budget, contradicting
    // the paper's DRM gains at T_qual = 400 K; with no increase at
    // all, reliability would never bind before the thermal limit and
    // Figure 4's crossovers would vanish.
    if (frequency_ghz <= 4.0)
        return 0.6 + 0.1 * frequency_ghz;
    return 1.0 + 0.025 * (frequency_ghz - 4.0);
}

const std::vector<DvsLevel> &
dvsLevels()
{
    static const std::vector<DvsLevel> levels = [] {
        std::vector<DvsLevel> v;
        for (double f = 2.5; f <= 5.0 + 1e-9; f += 0.25)
            v.push_back(DvsLevel{f, dvsVoltage(f)});
        return v;
    }();
    return levels;
}

const std::vector<sim::MachineConfig> &
archConfigs()
{
    static const std::vector<sim::MachineConfig> configs = [] {
        const std::uint32_t windows[] = {128, 96, 64, 48, 32, 16};
        struct FuPool
        {
            std::uint32_t alus;
            std::uint32_t fpus;
        };
        const FuPool pools[] = {{6, 4}, {4, 2}, {2, 1}};

        std::vector<sim::MachineConfig> v;
        for (auto w : windows) {
            for (auto pool : pools) {
                sim::MachineConfig cfg = sim::baseMachine();
                cfg.window_size = w;
                cfg.num_int_alu = pool.alus;
                cfg.num_fpu = pool.fpus;
                // The memory queue shrinks with the window so the
                // smallest machines are proportionally narrow.
                cfg.mem_queue = std::max<std::uint32_t>(8, w / 4);
                cfg.validate();
                v.push_back(cfg);
            }
        }
        if (v.size() != 18)
            util::panic("arch adaptation space must have 18 configs");
        return v;
    }();
    return configs;
}

const char *
adaptationSpaceName(AdaptationSpace s)
{
    switch (s) {
      case AdaptationSpace::Arch:
        return "Arch";
      case AdaptationSpace::Dvs:
        return "DVS";
      case AdaptationSpace::ArchDvs:
        return "ArchDVS";
      case AdaptationSpace::FetchThrottle:
        return "FetchThrottle";
    }
    util::panic("adaptationSpaceName: bad space");
}

std::optional<AdaptationSpace>
adaptationSpaceFromName(std::string_view name)
{
    for (AdaptationSpace s :
         {AdaptationSpace::Arch, AdaptationSpace::Dvs,
          AdaptationSpace::ArchDvs, AdaptationSpace::FetchThrottle})
        if (name == adaptationSpaceName(s))
            return s;
    return std::nullopt;
}

std::vector<sim::MachineConfig>
configSpace(AdaptationSpace space)
{
    std::vector<sim::MachineConfig> out;
    switch (space) {
      case AdaptationSpace::Arch:
        out = archConfigs();
        break;
      case AdaptationSpace::Dvs:
        for (const auto &lvl : dvsLevels()) {
            sim::MachineConfig cfg = sim::baseMachine();
            cfg.frequency_ghz = lvl.frequency_ghz;
            cfg.voltage_v = lvl.voltage_v;
            out.push_back(cfg);
        }
        break;
      case AdaptationSpace::ArchDvs:
        for (const auto &arch : archConfigs()) {
            for (const auto &lvl : dvsLevels()) {
                sim::MachineConfig cfg = arch;
                cfg.frequency_ghz = lvl.frequency_ghz;
                cfg.voltage_v = lvl.voltage_v;
                out.push_back(cfg);
            }
        }
        break;
      case AdaptationSpace::FetchThrottle:
        for (std::uint32_t duty = 8; duty >= 1; --duty) {
            sim::MachineConfig cfg = sim::baseMachine();
            cfg.fetch_duty_x8 = duty;
            out.push_back(cfg);
        }
        break;
    }
    return out;
}

} // namespace drm
} // namespace ramp
