/**
 * @file
 * Oracle DRM/DTM exploration (paper Section 5).
 *
 * The paper evaluates DRM's potential with an oracle that adapts once
 * per application run: every configuration in the adaptation space is
 * simulated, and the best-performing one that meets the constraint is
 * selected. DRM's constraint is the application FIT value against
 * FIT_target at a given qualification temperature T_qual; DTM's
 * constraint is the hottest on-chip temperature against the thermal
 * design point T_design.
 *
 * Exploration (expensive timing+thermal simulation) is decoupled from
 * selection (cheap FIT evaluation), because the same explored space
 * serves every T_qual / T_design value in a sweep.
 */

#pragma once

#include <vector>

#include "core/engine.hh"
#include "core/evaluator.hh"
#include "core/qualification.hh"
#include "drm/adaptation.hh"
#include "drm/eval_cache.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"

namespace ramp {
namespace drm {

/** An explored configuration for one application. */
struct ExploredPoint
{
    core::OperatingPoint op;
    /** Performance relative to the base machine (1.0 = parity). */
    double perf_rel = 0.0;
    /** False when this point's evaluation failed (singular solve,
     *  non-finite temperatures): op is default-constructed and the
     *  point is excluded from every selection. A *non-converged*
     *  evaluation is different -- it is valid but carries
     *  op.converged == false. */
    bool valid = true;
};

/** The full explored space for one application. */
struct ExploredApp
{
    std::string app_name;
    core::OperatingPoint base;         ///< Base-machine operating point.
    std::vector<ExploredPoint> points; ///< One per configuration.
};

/** Constraint evaluation of one explored point, recorded in
 *  Selection::table in ExploredApp::points order. */
struct SelectionPoint
{
    double perf_rel = 0.0;
    double fit = 0.0;        ///< Application FIT under the qualification.
    double max_temp_k = 0.0; ///< Hottest structure at this point.
    bool feasible = false;   ///< Met the policy's constraint.
    /** Participated in the selection. False for failed evaluations
     *  (both policies) and, under DRM, for non-converged ones: a FIT
     *  value derived from an unconverged thermal iterate must not
     *  steer reliability management, not even as a fallback. */
    bool valid = true;
    /** The point's thermal fixed point converged. */
    bool converged = true;
};

/**
 * Result of a DRM or DTM oracle selection.
 *
 * Every selection carries the winner's real application FIT under the
 * qualification it was given -- there is no reliability-oblivious
 * "0.0 FIT" sentinel -- plus the full per-point constraint table, so
 * callers can render sweeps without re-running the policy.
 */
struct Selection
{
    /** Index into ExploredApp::points; the constrained optimum. */
    std::size_t index = 0;
    /** The winning configuration (copy of the chosen point's). */
    sim::MachineConfig config;
    double perf_rel = 0.0;
    double fit = 0.0;        ///< Application FIT at the chosen point.
    double max_temp_k = 0.0; ///< Hottest structure at the choice.
    /** False when no configuration met the constraint; the selection
     *  then falls back to the least-violating configuration. */
    bool feasible = false;
    /** Per-point constraint evaluations, one per explored point. */
    std::vector<SelectionPoint> table;
};

/** Application FIT of one operating point under a qualification. */
double operatingPointFit(const core::Qualification &qual,
                         const core::OperatingPoint &op);

/**
 * The per-structure maximum activity across a set of base operating
 * points: the paper's alpha_qual (Section 3.7).
 */
sim::PerStructure<double>
alphaQualFromBaseline(const std::vector<core::OperatingPoint> &base_ops);

/** Explores adaptation spaces for applications. */
class OracleExplorer
{
  public:
    /**
     * @param eval_params Simulation controls shared by every point.
     * @param cache Optional persistent cache for the timing runs;
     *        must outlive the explorer.
     * @param pool Optional thread pool explore() fans points out
     *        across; must outlive the explorer. Null means serial.
     */
    explicit OracleExplorer(core::EvalParams eval_params = {},
                            EvaluationCache *cache = nullptr,
                            util::ThreadPool *pool = nullptr);

    /**
     * Evaluate one (configuration, application) point, via the cache
     * when one is attached. A failed evaluation (singular solve,
     * non-finite temperatures) comes back as a RampError and is never
     * cached; non-convergence is a valid point with
     * op.converged == false.
     */
    [[nodiscard]] util::Result<core::OperatingPoint>
    tryEvaluate(const sim::MachineConfig &cfg,
                const workload::AppProfile &app) const;

    /** tryEvaluate that treats any error as unrecoverable (fatal). */
    core::OperatingPoint evaluate(const sim::MachineConfig &cfg,
                                  const workload::AppProfile &app) const;

    /** Evaluate the base machine only. */
    core::OperatingPoint
    evaluateBase(const workload::AppProfile &app) const;

    /**
     * Evaluate every configuration in a space for one application.
     *
     * With a pool attached the points are evaluated concurrently, but
     * the output is deterministic: results land by configuration
     * index, every evaluation is independently seeded through
     * EvalParams::seed, and cold-cache runs first evaluate one
     * representative per unique timing key (so the work done -- and
     * the record each key caches -- is identical to a serial sweep).
     * Parallel output is bit-identical to serial output.
     *
     * A point whose evaluation fails is dropped, not fatal: it comes
     * back with valid == false (warned and counted in
     * oracle.failed_points), and failure decisions are pure functions
     * of the point's identity, so the dropped set is identical at
     * every thread count.
     */
    ExploredApp explore(const workload::AppProfile &app,
                        AdaptationSpace space) const;

    const core::Evaluator &evaluator() const { return evaluator_; }

    /** Attach/detach a pool after construction (null = serial). */
    void setPool(util::ThreadPool *pool) { pool_ = pool; }

  private:
    /** parallelFor via the pool, or a plain loop without one; either
     *  way items that throw RampException are dropped and reported. */
    [[nodiscard]] util::BatchReport
    forEach(std::size_t count,
            const std::function<void(std::size_t)> &fn) const;

    core::Evaluator evaluator_;
    EvaluationCache *cache_;
    util::ThreadPool *pool_;
};

/**
 * DRM oracle: best perf_rel subject to FIT <= qual target. Falls back
 * to the lowest-FIT point when nothing is feasible.
 */
Selection selectDrm(const ExploredApp &app,
                    const core::Qualification &qual);

/**
 * DTM oracle: best perf_rel subject to maxTemp <= t_design. Falls
 * back to the coolest point when nothing is feasible.
 *
 * The policy itself is reliability-oblivious -- @p qual never
 * influences which point is chosen -- but every point's real FIT is
 * still evaluated under @p qual and reported in the result, so DTM
 * selections compare against FIT budgets without sentinels.
 */
Selection selectDtm(const ExploredApp &app, double t_design_k,
                    const core::Qualification &qual);

} // namespace drm
} // namespace ramp

