#include "drm/controller.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace drm {

namespace {

/** Emit a level-change trace instant and bump the shared counter. */
void
recordLevelChange(const telemetry::Counter &counter, const char *name,
                  const char *cat, std::size_t from, std::size_t to,
                  double signal)
{
    counter.add();
    telemetry::instant(name, cat,
                       {{"from", static_cast<double>(from)},
                        {"to", static_cast<double>(to)},
                        {"signal", signal}});
}

struct ControllerMetrics
{
    telemetry::Counter drm_changes =
        telemetry::counter("drm.level_changes");
    telemetry::Counter dtm_changes =
        telemetry::counter("dtm.level_changes");
};

ControllerMetrics &
controllerMetrics()
{
    static ControllerMetrics m;
    return m;
}

} // namespace

DrmController::DrmController(Params params, std::size_t num_levels,
                             std::size_t start_level)
    : params_(params), num_levels_(num_levels), level_(start_level)
{
    if (num_levels == 0)
        util::fatal("DrmController needs at least one level");
    if (start_level >= num_levels)
        util::fatal("DrmController start level out of range");
    if (params_.target_fit <= 0.0)
        util::fatal("DrmController target FIT must be positive");
}

std::size_t
DrmController::observe(double avg_fit_so_far)
{
    if (cooldown_ > 0) {
        --cooldown_;
        return level_;
    }
    const double target = params_.target_fit;
    const std::size_t from = level_;
    if (avg_fit_so_far > target * (1.0 + params_.down_margin) &&
        level_ > 0) {
        --level_;
        ++transitions_;
        cooldown_ = params_.settle_intervals;
    } else if (avg_fit_so_far < target * (1.0 - params_.up_margin) &&
               level_ + 1 < num_levels_) {
        ++level_;
        ++transitions_;
        cooldown_ = params_.settle_intervals;
    }
    if (level_ != from)
        // ramp-lint: emits(instant, drm.level_change)
        recordLevelChange(controllerMetrics().drm_changes,
                          "drm.level_change", "drm", from, level_,
                          avg_fit_so_far);
    return level_;
}

SlackBankController::SlackBankController(Params params,
                                         std::size_t num_levels,
                                         std::size_t start_level)
    : params_(params), num_levels_(num_levels), level_(start_level)
{
    if (num_levels == 0)
        util::fatal("SlackBankController needs at least one level");
    if (start_level >= num_levels)
        util::fatal("SlackBankController start level out of range");
    if (params_.target_fit <= 0.0)
        util::fatal("SlackBankController target FIT must be "
                    "positive");
    if (params_.bank_fraction < 0.0)
        util::fatal("SlackBankController bank fraction must be "
                    "non-negative");
}

double
SlackBankController::allowedFit(double progress) const
{
    const double p = std::clamp(progress, 0.0, 1.0);
    return params_.target_fit *
           (1.0 + params_.bank_fraction * (1.0 - p));
}

std::size_t
SlackBankController::observe(double avg_fit_so_far, double progress)
{
    if (cooldown_ > 0) {
        --cooldown_;
        return level_;
    }
    const double allowed = allowedFit(progress);
    const std::size_t from = level_;
    if (avg_fit_so_far > allowed * (1.0 + params_.down_margin) &&
        level_ > 0) {
        --level_;
        ++transitions_;
        cooldown_ = params_.settle_intervals;
    } else if (avg_fit_so_far < allowed * (1.0 - params_.up_margin) &&
               level_ + 1 < num_levels_) {
        ++level_;
        ++transitions_;
        cooldown_ = params_.settle_intervals;
    }
    if (level_ != from)
        // ramp-lint: emits(instant, drm.level_change)
        recordLevelChange(controllerMetrics().drm_changes,
                          "drm.level_change", "drm", from, level_,
                          avg_fit_so_far);
    return level_;
}

DtmController::DtmController(Params params, std::size_t num_levels,
                             std::size_t start_level)
    : params_(params), num_levels_(num_levels), level_(start_level)
{
    if (num_levels == 0)
        util::fatal("DtmController needs at least one level");
    if (start_level >= num_levels)
        util::fatal("DtmController start level out of range");
    if (params_.guard_k < 0.0)
        util::fatal("DtmController guard band must be non-negative");
}

std::size_t
DtmController::observe(double max_temp_k)
{
    if (cooldown_ > 0) {
        --cooldown_;
        return level_;
    }
    const std::size_t from = level_;
    if (max_temp_k > params_.t_design_k && level_ > 0) {
        --level_;
        ++transitions_;
        cooldown_ = params_.settle_intervals;
    } else if (max_temp_k < params_.t_design_k - params_.guard_k &&
               level_ + 1 < num_levels_) {
        ++level_;
        ++transitions_;
        cooldown_ = params_.settle_intervals;
    }
    if (level_ != from)
        // ramp-lint: emits(instant, dtm.level_change)
        recordLevelChange(controllerMetrics().dtm_changes,
                          "dtm.level_change", "dtm", from, level_,
                          max_temp_k);
    return level_;
}

} // namespace drm
} // namespace ramp
