#include "drm/controller.hh"

#include "util/logging.hh"

namespace ramp {
namespace drm {

DrmController::DrmController(Params params, std::size_t num_levels,
                             std::size_t start_level)
    : params_(params), num_levels_(num_levels), level_(start_level)
{
    if (num_levels == 0)
        util::fatal("DrmController needs at least one level");
    if (start_level >= num_levels)
        util::fatal("DrmController start level out of range");
    if (params_.target_fit <= 0.0)
        util::fatal("DrmController target FIT must be positive");
}

std::size_t
DrmController::observe(double avg_fit_so_far)
{
    if (cooldown_ > 0) {
        --cooldown_;
        return level_;
    }
    const double target = params_.target_fit;
    if (avg_fit_so_far > target * (1.0 + params_.down_margin) &&
        level_ > 0) {
        --level_;
        ++transitions_;
        cooldown_ = params_.settle_intervals;
    } else if (avg_fit_so_far < target * (1.0 - params_.up_margin) &&
               level_ + 1 < num_levels_) {
        ++level_;
        ++transitions_;
        cooldown_ = params_.settle_intervals;
    }
    return level_;
}

DtmController::DtmController(Params params, std::size_t num_levels,
                             std::size_t start_level)
    : params_(params), num_levels_(num_levels), level_(start_level)
{
    if (num_levels == 0)
        util::fatal("DtmController needs at least one level");
    if (start_level >= num_levels)
        util::fatal("DtmController start level out of range");
    if (params_.guard_k < 0.0)
        util::fatal("DtmController guard band must be non-negative");
}

std::size_t
DtmController::observe(double max_temp_k)
{
    if (cooldown_ > 0) {
        --cooldown_;
        return level_;
    }
    if (max_temp_k > params_.t_design_k && level_ > 0) {
        --level_;
        ++transitions_;
        cooldown_ = params_.settle_intervals;
    } else if (max_temp_k < params_.t_design_k - params_.guard_k &&
               level_ + 1 < num_levels_) {
        ++level_;
        ++transitions_;
        cooldown_ = params_.settle_intervals;
    }
    return level_;
}

} // namespace drm
} // namespace ramp
