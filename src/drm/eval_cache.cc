#include "drm/eval_cache.hh"

// ramp-lint: guarded_by(mutex_): entries_

#include <chrono>
#include <cstdio>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define RAMP_HAVE_FLOCK 1
#endif

#include "fault/fault.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace drm {

namespace {

// v3: frequency serialized at full precision in the key (v2 collided
// fine-grained DVS rungs past 4 significant digits). The version
// check drops every stale key at load.
constexpr int record_version = 3;

/** Process-wide mirror of the per-instance Stats counters, so cache
 *  behaviour shows up in `--metrics` snapshots alongside everything
 *  else. The per-instance atomics stay authoritative for stats(). */
struct CacheMetrics
{
    telemetry::Counter hits = telemetry::counter("cache.hits");
    telemetry::Counter misses = telemetry::counter("cache.misses");
    telemetry::Counter appends = telemetry::counter("cache.appends");
    telemetry::Counter loaded = telemetry::counter("cache.loaded");
    telemetry::Counter compactions =
        telemetry::counter("cache.compactions");
    telemetry::Counter compacted_lines =
        telemetry::counter("cache.compacted_lines");
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics m;
    return m;
}

// Degradation counters, registered lazily (on first event) so a
// clean run's metric snapshot is unchanged.

const telemetry::Counter &
quarantinedCounter()
{
    static const telemetry::Counter c =
        telemetry::counter("eval_cache.quarantined");
    return c;
}

const telemetry::Counter &
openRetryCounter()
{
    static const telemetry::Counter c =
        telemetry::counter("eval_cache.open_retries");
    return c;
}

const telemetry::Counter &
contentionCounter()
{
    static const telemetry::Counter c =
        telemetry::counter("eval_cache.lock_contention");
    return c;
}

const telemetry::Counter &
writeFailCounter()
{
    static const telemetry::Counter c =
        telemetry::counter("eval_cache.write_failures");
    return c;
}

/** The replicated-mode epoch header ("!epoch N"). */
constexpr const char *epoch_tag = "!epoch";

/**
 * Parse one serialized record line into (key, value). False on
 * stale versions, short or non-numeric lines -- the same policy the
 * load path applies, shared with peer-record ingestion.
 */
bool
parseRecordLine(const std::string &line, std::string &key,
                CachedEvaluation &v)
{
    std::istringstream is(line);
    int version = 0;
    is >> version >> key;
    if (version != record_version || key.empty())
        return false;
    is >> v.activity.cycles >> v.activity.retired;
    for (auto &a : v.activity.activity)
        is >> a;
    is >> v.stats.cycles >> v.stats.fetched >> v.stats.retired >>
        v.stats.dispatched >> v.stats.issued >> v.stats.branches >>
        v.stats.mispredicts >> v.stats.ras_returns >> v.stats.loads >>
        v.stats.stores;
    is >> v.l1d_miss_ratio >> v.l1i_miss_ratio >> v.l2_miss_ratio;
    return static_cast<bool>(is);
}

} // namespace

EvaluationCache::EvaluationCache(std::string path, bool replicated)
    : path_(std::move(path)), replicated_(replicated)
{
    if (path_.empty())
        return; // In-memory only: no log, no lock sidecar.
#ifdef RAMP_HAVE_FLOCK
    // Advisory cross-process coordination: hold a shared lock on a
    // sidecar for as long as this cache (and its appender) lives.
    // Compaction below upgrades to exclusive, so it can never rename
    // the log out from under another process's open appender. In
    // replicated mode the log is process-private (a backend's shard
    // copy, re-warmable from peers via cache_append), so the sidecar
    // is skipped and the epoch header coordinates instead.
    if (!replicated_) {
        lock_fd_ = ::open((path_ + ".lock").c_str(),
                          O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (lock_fd_ >= 0 && ::flock(lock_fd_, LOCK_SH) != 0) {
            ::close(lock_fd_);
            lock_fd_ = -1;
        }
    }
#endif

    std::size_t lines = 0;
    std::vector<std::string> bad_lines;
    {
        std::ifstream in(path_);
        std::string line;
        while (in && std::getline(in, line)) {
            // Epoch headers (replicated mode) are metadata, not
            // records: adopt the highest and keep loading.
            if (line.rfind(epoch_tag, 0) == 0) {
                std::istringstream is(line);
                std::string tag;
                std::uint64_t e = 0;
                if (is >> tag >> e &&
                    e > epoch_.load(std::memory_order_relaxed))
                    epoch_.store(e, std::memory_order_relaxed);
                continue;
            }
            ++lines;
            std::string key;
            CachedEvaluation v;
            if (!parseRecordLine(line, key, v)) {
                bad_lines.push_back(line);
                continue; // corrupt or stale record
            }
            // ramp-lint: allow(lock-discipline): constructor, pre-concurrency
            entries_[key] = v;
        }
    }
    // ramp-lint: allow(lock-discipline): constructor, pre-concurrency
    loaded_ = entries_.size();

    // Corrupt and stale-version lines are evidence (of a torn write,
    // interleaved appends, or a bug), not noise: park them in a
    // sidecar instead of silently discarding them. Superseded
    // duplicates parse fine and are merely compacted away.
    if (!bad_lines.empty()) {
        const std::string qpath = path_ + ".quarantine";
        std::ofstream q(qpath, std::ios::app);
        if (q)
            for (const auto &l : bad_lines)
                q << l << '\n';
        quarantined_ = bad_lines.size();
        quarantinedCounter().add(quarantined_);
        util::warn(util::cat("evaluation cache: quarantined ",
                             quarantined_,
                             " corrupt/stale lines from ", path_,
                             " to ", qpath));
    }

    // Compact: rewrite the append-log as exactly one line per live
    // record, dropping corrupt lines, stale versions, and superseded
    // duplicates. Skipped when the log is already compact (the
    // common warm-start case) so clean loads touch nothing. A
    // contended or failed compaction is a recoverable, structured
    // condition -- the log simply stays as-is until a future
    // exclusive holder compacts it.
    // ramp-lint: allow(lock-discipline): constructor, pre-concurrency
    if (lines > entries_.size()) {
        if (auto r = tryCompact(lines); !r) {
            if (r.error().code == util::ErrorCode::LockContention) {
                contentionCounter().add();
                util::debug(util::cat("evaluation cache: ",
                                      r.error().str()));
            } else {
                util::warn(util::cat("evaluation cache: ",
                                     r.error().str()));
            }
        }
    }

    // One appender for the cache's lifetime: put() no longer pays an
    // open/close per record, and every append is a single line-
    // granular write behind file_mutex_.
    if (!openAppender())
        util::warn(
            util::cat("evaluation cache: cannot append to ", path_));

    auto &metrics = cacheMetrics();
    metrics.loaded.add(loaded_);
    if (compacted_) {
        metrics.compactions.add();
        metrics.compacted_lines.add(compacted_);
    }
    if (loaded_)
        util::inform(util::cat("evaluation cache: loaded ", loaded_,
                               " records from ", path_,
                               compacted_ ? util::cat(" (compacted ",
                                                      compacted_,
                                                      " stale lines)")
                                          : ""));
}

util::Result<void>
EvaluationCache::tryCompact(std::size_t lines)
{
#ifdef RAMP_HAVE_FLOCK
    // Another process's shared lock blocks our exclusive upgrade:
    // renaming over the log would detach that process's appender onto
    // an unlinked inode and lose every record it writes for the rest
    // of its run. flock conversions are not atomic: on a failed
    // non-blocking upgrade the shared lock may already be gone, so
    // re-acquire it (briefly blocking on at most one compacting
    // holder).
    if (!replicated_ &&
        (lock_fd_ < 0 ||
         ::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0)) {
        if (lock_fd_ >= 0)
            ::flock(lock_fd_, LOCK_SH);
        return util::RampError{
            util::ErrorCode::LockContention,
            util::cat("another process holds ", path_,
                      " open; compaction deferred")};
    }
#endif
    // Compaction runs from the constructor, before any concurrent
    // reader or writer of entries_ exists.
    // ramp-lint: allow(lock-discipline): constructor, pre-concurrency
    compacted_ = lines - entries_.size();
    const std::string tmp = path_ + ".compact.tmp";
    std::ofstream out(tmp, std::ios::trunc);
    bool wrote = static_cast<bool>(out);
    if (wrote) {
        // Replicated mode stamps the rewrite with a bumped epoch, so
        // peers can tell a freshly compacted log from the one whose
        // tail they were following.
        const std::uint64_t next_epoch =
            epoch_.load(std::memory_order_relaxed) + 1;
        if (replicated_)
            out << epoch_tag << ' ' << next_epoch << '\n';
        // ramp-lint: allow(lock-discipline): constructor-time compaction
        for (const auto &[key, value] : entries_)
            writeRecord(out, key, value);
        out.close();
        wrote = static_cast<bool>(out) &&
                std::rename(tmp.c_str(), path_.c_str()) == 0;
        if (wrote && replicated_)
            epoch_.store(next_epoch, std::memory_order_relaxed);
    }
#ifdef RAMP_HAVE_FLOCK
    if (!replicated_ && lock_fd_ >= 0)
        ::flock(lock_fd_, LOCK_SH); // downgrade for our lifetime
#endif
    if (!wrote) {
        std::remove(tmp.c_str());
        compacted_ = 0;
        return util::RampError{
            util::ErrorCode::IoFailure,
            util::cat("compaction of ", path_,
                      " failed; log left as-is")};
    }
    return {};
}

bool
EvaluationCache::openAppender()
{
    // Bounded retry with exponential backoff: a transiently failing
    // open (fd pressure, slow network filesystem) should cost a few
    // milliseconds, not every append for the rest of the run.
    for (int attempt = 0;; ++attempt) {
        appender_.clear();
        // std::ofstream::open, not serve's Result-returning open;
        // the cross-TU pass matches by name only.
        // ramp-lint: allow(result-discipline): std::ofstream::open name-collision
        appender_.open(path_, std::ios::app);
        if (appender_)
            return true;
        if (attempt >= 3)
            return false;
        openRetryCounter().add();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 << attempt));
    }
}

EvaluationCache::~EvaluationCache()
{
#ifdef RAMP_HAVE_FLOCK
    if (lock_fd_ >= 0)
        ::close(lock_fd_); // releases the advisory lock
#endif
}

std::string
EvaluationCache::key(const sim::MachineConfig &cfg,
                     const workload::AppProfile &app,
                     const core::EvalParams &params)
{
    // Everything that affects the *timing* simulation. Voltage is
    // deliberately absent: it affects power and reliability, which
    // are recomputed from the cached activity, but never the timing.
    // With clock-scaled off-chip latencies, frequency is timing-
    // irrelevant too (all latencies are fixed cycle counts), so all
    // DVS rungs share one record.
    std::ostringstream os;
    // Full round-trip precision: at the default (6) or any truncated
    // precision, DVS rungs closer than the printed digits would
    // collide into one record and silently share timing results.
    os.precision(std::numeric_limits<double>::max_digits10);
    os << app.name << "|w" << cfg.window_size << "a" << cfg.num_int_alu
       << "f" << cfg.num_fpu << "g" << cfg.num_agen << "q"
       << cfg.mem_queue << "d" << cfg.fetch_duty_x8 << "|";
    if (cfg.offchip_scales_with_clock)
        os << "cycN";
    else
        os << cfg.frequency_ghz << "GHz";
    os << '|' << params.seed << '|' << params.warmup_uops << '|'
       << params.measure_uops;
    return os.str();
}

std::optional<CachedEvaluation>
EvaluationCache::get(const std::string &key) const
{
    std::shared_lock lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        cacheMetrics().misses.add();
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    cacheMetrics().hits.add();
    return it->second;
}

bool
EvaluationCache::contains(const std::string &key) const
{
    std::shared_lock lock(mutex_);
    return entries_.find(key) != entries_.end();
}

void
EvaluationCache::put(const std::string &key,
                     const CachedEvaluation &value)
{
    {
        std::unique_lock lock(mutex_);
        entries_[key] = value;
    }
    // Format outside the lock, write the complete line in one go:
    // concurrent putters serialize on file_mutex_ and each line lands
    // whole (load-time parsing tolerates anything else anyway).
    std::ostringstream line;
    writeRecord(line, key, value);
    std::string text = line.str();

    // Replication tap: forward the clean serialized record (never the
    // fault-corrupted variant -- disk corruption is a local hazard,
    // not something to propagate to peers).
    if (observer_) {
        std::string clean = text;
        if (!clean.empty() && clean.back() == '\n')
            clean.pop_back();
        observer_(key, clean);
    }

    if (path_.empty())
        return;

    // Fault hook: garble the on-disk record for hash-selected keys
    // (the in-memory entry stays good). The corruption surfaces at
    // the next load as a quarantined line, never as wrong data.
    if (const auto *plan = fault::activeFaultPlan();
        plan && plan->enabled(fault::FaultKind::CacheCorrupt) &&
        fault::corruptCacheRecord(*plan, key)) {
        if (!text.empty() && text.back() == '\n')
            text.pop_back();
        text = fault::corruptLine(*plan, text);
        text += '\n';
    }

    appendLine(text);
}

void
EvaluationCache::appendLine(const std::string &text)
{
    std::lock_guard lock(file_mutex_);
    if (!appender_ && !openAppender())
        return; // warned at construction; retried here
    appender_ << text;
    appender_.flush();
    if (!appender_) {
        // Failed write: report, drop the stream, and let the next
        // put() reopen it. The in-memory record is already live.
        writeFailCounter().add();
        util::warn(util::cat(
            "evaluation cache: append to ", path_,
            " failed; will reopen on the next record"));
        appender_.close();
        appender_.clear();
        return;
    }
    appended_.fetch_add(1, std::memory_order_relaxed);
    cacheMetrics().appends.add();
}

void
EvaluationCache::setAppendObserver(AppendObserver observer)
{
    observer_ = std::move(observer);
}

std::vector<std::pair<std::string, std::string>>
EvaluationCache::exportRecords() const
{
    std::vector<std::pair<std::string, std::string>> out;
    std::shared_lock lock(mutex_);
    out.reserve(entries_.size());
    for (const auto &[key, value] : entries_) {
        std::ostringstream line;
        writeRecord(line, key, value);
        std::string text = line.str();
        if (!text.empty() && text.back() == '\n')
            text.pop_back();
        out.emplace_back(key, std::move(text));
    }
    return out;
}

bool
EvaluationCache::putSerialized(const std::string &key,
                               const std::string &line)
{
    std::string parsed_key;
    CachedEvaluation v;
    if (!parseRecordLine(line, parsed_key, v) || parsed_key != key)
        return false; // malformed or mislabelled peer record
    {
        std::unique_lock lock(mutex_);
        if (!entries_.emplace(parsed_key, v).second)
            return false; // idempotent: key already live
    }
    if (!path_.empty())
        appendLine(line + '\n');
    return true;
}

std::size_t
EvaluationCache::size() const
{
    std::shared_lock lock(mutex_);
    return entries_.size();
}

EvaluationCache::Stats
EvaluationCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.appended = appended_.load(std::memory_order_relaxed);
    s.loaded = loaded_;
    s.compacted = compacted_;
    s.quarantined = quarantined_;
    return s;
}

void
EvaluationCache::writeRecord(std::ostream &out, const std::string &key,
                             const CachedEvaluation &v) const
{
    out.precision(17);
    out << record_version << ' ' << key << ' ' << v.activity.cycles
        << ' ' << v.activity.retired;
    for (double a : v.activity.activity)
        out << ' ' << a;
    out << ' ' << v.stats.cycles << ' ' << v.stats.fetched << ' '
        << v.stats.retired << ' ' << v.stats.dispatched << ' '
        << v.stats.issued << ' ' << v.stats.branches << ' '
        << v.stats.mispredicts << ' ' << v.stats.ras_returns << ' '
        << v.stats.loads << ' ' << v.stats.stores;
    out << ' ' << v.l1d_miss_ratio << ' ' << v.l1i_miss_ratio << ' '
        << v.l2_miss_ratio << '\n';
}

} // namespace drm
} // namespace ramp
