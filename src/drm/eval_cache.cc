#include "drm/eval_cache.hh"

#include <cstdio>
#include <limits>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define RAMP_HAVE_FLOCK 1
#endif

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace drm {

namespace {

// v3: frequency serialized at full precision in the key (v2 collided
// fine-grained DVS rungs past 4 significant digits). The version
// check drops every stale key at load.
constexpr int record_version = 3;

/** Process-wide mirror of the per-instance Stats counters, so cache
 *  behaviour shows up in `--metrics` snapshots alongside everything
 *  else. The per-instance atomics stay authoritative for stats(). */
struct CacheMetrics
{
    telemetry::Counter hits = telemetry::counter("cache.hits");
    telemetry::Counter misses = telemetry::counter("cache.misses");
    telemetry::Counter appends = telemetry::counter("cache.appends");
    telemetry::Counter loaded = telemetry::counter("cache.loaded");
    telemetry::Counter compactions =
        telemetry::counter("cache.compactions");
    telemetry::Counter compacted_lines =
        telemetry::counter("cache.compacted_lines");
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics m;
    return m;
}

} // namespace

EvaluationCache::EvaluationCache(std::string path)
    : path_(std::move(path))
{
#ifdef RAMP_HAVE_FLOCK
    // Advisory cross-process coordination: hold a shared lock on a
    // sidecar for as long as this cache (and its appender) lives.
    // Compaction below upgrades to exclusive, so it can never rename
    // the log out from under another process's open appender.
    lock_fd_ = ::open((path_ + ".lock").c_str(),
                      O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (lock_fd_ >= 0 && ::flock(lock_fd_, LOCK_SH) != 0) {
        ::close(lock_fd_);
        lock_fd_ = -1;
    }
#endif

    std::size_t lines = 0;
    {
        std::ifstream in(path_);
        std::string line;
        while (in && std::getline(in, line)) {
            ++lines;
            std::istringstream is(line);
            int version = 0;
            std::string key;
            CachedEvaluation v;
            is >> version >> key;
            if (version != record_version || key.empty())
                continue;
            is >> v.activity.cycles >> v.activity.retired;
            for (auto &a : v.activity.activity)
                is >> a;
            is >> v.stats.cycles >> v.stats.fetched >>
                v.stats.retired >> v.stats.dispatched >>
                v.stats.issued >> v.stats.branches >>
                v.stats.mispredicts >> v.stats.ras_returns >>
                v.stats.loads >> v.stats.stores;
            is >> v.l1d_miss_ratio >> v.l1i_miss_ratio >>
                v.l2_miss_ratio;
            if (!is)
                continue; // corrupt record: skip
            entries_[key] = v;
        }
    }
    loaded_ = entries_.size();

    // Compact: rewrite the append-log as exactly one line per live
    // record, dropping corrupt lines, stale versions, and superseded
    // duplicates. Skipped when the log is already compact (the
    // common warm-start case) so clean loads touch nothing, and
    // skipped when another process holds the cache open (its shared
    // lock blocks our exclusive upgrade): renaming over the log would
    // detach that process's appender onto an unlinked inode and lose
    // every record it writes for the rest of its run.
    bool may_compact = lines > entries_.size();
#ifdef RAMP_HAVE_FLOCK
    if (may_compact) {
        // flock conversions are not atomic: on a failed non-blocking
        // upgrade the shared lock may already be gone, so re-acquire
        // it (briefly blocking on at most one compacting holder).
        may_compact = lock_fd_ >= 0 &&
                      ::flock(lock_fd_, LOCK_EX | LOCK_NB) == 0;
        if (!may_compact && lock_fd_ >= 0)
            ::flock(lock_fd_, LOCK_SH);
    }
#endif
    if (may_compact) {
        compacted_ = lines - entries_.size();
        const std::string tmp = path_ + ".compact.tmp";
        std::ofstream out(tmp, std::ios::trunc);
        if (out) {
            for (const auto &[key, value] : entries_)
                writeRecord(out, key, value);
            out.close();
            if (!out || std::rename(tmp.c_str(), path_.c_str()) != 0) {
                util::warn(util::cat("evaluation cache: compaction of ",
                                     path_, " failed; log left as-is"));
                std::remove(tmp.c_str());
                compacted_ = 0;
            }
        }
#ifdef RAMP_HAVE_FLOCK
        if (lock_fd_ >= 0)
            ::flock(lock_fd_, LOCK_SH); // downgrade for our lifetime
#endif
    }

    // One appender for the cache's lifetime: put() no longer pays an
    // open/close per record, and every append is a single line-
    // granular write behind file_mutex_.
    appender_.open(path_, std::ios::app);
    if (!appender_)
        util::warn(
            util::cat("evaluation cache: cannot append to ", path_));

    auto &metrics = cacheMetrics();
    metrics.loaded.add(loaded_);
    if (compacted_) {
        metrics.compactions.add();
        metrics.compacted_lines.add(compacted_);
    }
    if (loaded_)
        util::inform(util::cat("evaluation cache: loaded ", loaded_,
                               " records from ", path_,
                               compacted_ ? util::cat(" (compacted ",
                                                      compacted_,
                                                      " stale lines)")
                                          : ""));
}

EvaluationCache::~EvaluationCache()
{
#ifdef RAMP_HAVE_FLOCK
    if (lock_fd_ >= 0)
        ::close(lock_fd_); // releases the advisory lock
#endif
}

std::string
EvaluationCache::key(const sim::MachineConfig &cfg,
                     const workload::AppProfile &app,
                     const core::EvalParams &params)
{
    // Everything that affects the *timing* simulation. Voltage is
    // deliberately absent: it affects power and reliability, which
    // are recomputed from the cached activity, but never the timing.
    // With clock-scaled off-chip latencies, frequency is timing-
    // irrelevant too (all latencies are fixed cycle counts), so all
    // DVS rungs share one record.
    std::ostringstream os;
    // Full round-trip precision: at the default (6) or any truncated
    // precision, DVS rungs closer than the printed digits would
    // collide into one record and silently share timing results.
    os.precision(std::numeric_limits<double>::max_digits10);
    os << app.name << "|w" << cfg.window_size << "a" << cfg.num_int_alu
       << "f" << cfg.num_fpu << "g" << cfg.num_agen << "q"
       << cfg.mem_queue << "d" << cfg.fetch_duty_x8 << "|";
    if (cfg.offchip_scales_with_clock)
        os << "cycN";
    else
        os << cfg.frequency_ghz << "GHz";
    os << '|' << params.seed << '|' << params.warmup_uops << '|'
       << params.measure_uops;
    return os.str();
}

std::optional<CachedEvaluation>
EvaluationCache::get(const std::string &key) const
{
    std::shared_lock lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        cacheMetrics().misses.add();
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    cacheMetrics().hits.add();
    return it->second;
}

void
EvaluationCache::put(const std::string &key,
                     const CachedEvaluation &value)
{
    {
        std::unique_lock lock(mutex_);
        entries_[key] = value;
    }
    if (path_.empty())
        return;
    // Format outside the lock, write the complete line in one go:
    // concurrent putters serialize on file_mutex_ and each line lands
    // whole (load-time parsing tolerates anything else anyway).
    std::ostringstream line;
    writeRecord(line, key, value);
    std::lock_guard lock(file_mutex_);
    if (!appender_)
        return; // warned at construction
    appender_ << line.str();
    appender_.flush();
    appended_.fetch_add(1, std::memory_order_relaxed);
    cacheMetrics().appends.add();
}

std::size_t
EvaluationCache::size() const
{
    std::shared_lock lock(mutex_);
    return entries_.size();
}

EvaluationCache::Stats
EvaluationCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.appended = appended_.load(std::memory_order_relaxed);
    s.loaded = loaded_;
    s.compacted = compacted_;
    return s;
}

void
EvaluationCache::writeRecord(std::ostream &out, const std::string &key,
                             const CachedEvaluation &v) const
{
    out.precision(17);
    out << record_version << ' ' << key << ' ' << v.activity.cycles
        << ' ' << v.activity.retired;
    for (double a : v.activity.activity)
        out << ' ' << a;
    out << ' ' << v.stats.cycles << ' ' << v.stats.fetched << ' '
        << v.stats.retired << ' ' << v.stats.dispatched << ' '
        << v.stats.issued << ' ' << v.stats.branches << ' '
        << v.stats.mispredicts << ' ' << v.stats.ras_returns << ' '
        << v.stats.loads << ' ' << v.stats.stores;
    out << ' ' << v.l1d_miss_ratio << ' ' << v.l1i_miss_ratio << ' '
        << v.l2_miss_ratio << '\n';
}

} // namespace drm
} // namespace ramp
