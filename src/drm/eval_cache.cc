#include "drm/eval_cache.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace ramp {
namespace drm {

namespace {

constexpr int record_version = 2;

} // namespace

EvaluationCache::EvaluationCache(std::string path)
    : path_(std::move(path))
{
    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    std::size_t loaded = 0;
    while (std::getline(in, line)) {
        std::istringstream is(line);
        int version = 0;
        std::string key;
        CachedEvaluation v;
        is >> version >> key;
        if (version != record_version || key.empty())
            continue;
        is >> v.activity.cycles >> v.activity.retired;
        for (auto &a : v.activity.activity)
            is >> a;
        is >> v.stats.cycles >> v.stats.fetched >> v.stats.retired >>
            v.stats.dispatched >> v.stats.issued >> v.stats.branches >>
            v.stats.mispredicts >> v.stats.ras_returns >>
            v.stats.loads >> v.stats.stores;
        is >> v.l1d_miss_ratio >> v.l1i_miss_ratio >> v.l2_miss_ratio;
        if (!is)
            continue; // corrupt record: skip
        entries_[key] = v;
        ++loaded;
    }
    if (loaded)
        util::inform(util::cat("evaluation cache: loaded ", loaded,
                               " records from ", path_));
}

std::string
EvaluationCache::key(const sim::MachineConfig &cfg,
                     const workload::AppProfile &app,
                     const core::EvalParams &params)
{
    // Everything that affects the *timing* simulation. Voltage is
    // deliberately absent: it affects power and reliability, which
    // are recomputed from the cached activity, but never the timing.
    // With clock-scaled off-chip latencies, frequency is timing-
    // irrelevant too (all latencies are fixed cycle counts), so all
    // DVS rungs share one record.
    std::ostringstream os;
    os.precision(4);
    os << app.name << "|w" << cfg.window_size << "a" << cfg.num_int_alu
       << "f" << cfg.num_fpu << "g" << cfg.num_agen << "q"
       << cfg.mem_queue << "d" << cfg.fetch_duty_x8 << "|";
    if (cfg.offchip_scales_with_clock)
        os << "cycN";
    else
        os << cfg.frequency_ghz << "GHz";
    os << '|' << params.seed << '|' << params.warmup_uops << '|'
       << params.measure_uops;
    return os.str();
}

std::optional<CachedEvaluation>
EvaluationCache::get(const std::string &key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
EvaluationCache::put(const std::string &key,
                     const CachedEvaluation &value)
{
    entries_[key] = value;
    if (!path_.empty())
        appendToFile(key, value);
}

void
EvaluationCache::appendToFile(const std::string &key,
                              const CachedEvaluation &v) const
{
    std::ofstream out(path_, std::ios::app);
    if (!out) {
        util::warn(util::cat("evaluation cache: cannot append to ",
                             path_));
        return;
    }
    out.precision(17);
    out << record_version << ' ' << key << ' ' << v.activity.cycles
        << ' ' << v.activity.retired;
    for (double a : v.activity.activity)
        out << ' ' << a;
    out << ' ' << v.stats.cycles << ' ' << v.stats.fetched << ' '
        << v.stats.retired << ' ' << v.stats.dispatched << ' '
        << v.stats.issued << ' ' << v.stats.branches << ' '
        << v.stats.mispredicts << ' ' << v.stats.ras_returns << ' '
        << v.stats.loads << ' ' << v.stats.stores;
    out << ' ' << v.l1d_miss_ratio << ' ' << v.l1i_miss_ratio << ' '
        << v.l2_miss_ratio << '\n';
}

} // namespace drm
} // namespace ramp
