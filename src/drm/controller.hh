/**
 * @file
 * Closed-loop DRM and DTM controllers (the paper's Section 8 future
 * work: "specific adaptive control algorithms").
 *
 * Reliability is a *budget over time* (Section 4): unlike
 * temperature, which must be capped instantaneously, FIT can be
 * banked during cool phases and spent during hot ones. The DRM
 * controller therefore steers on the *lifetime-average* FIT:
 *
 *   error = avg_fit_so_far - target
 *
 * stepping the DVS ladder down when the budget is overspent and up
 * when enough slack has accumulated. Hysteresis (distinct up/down
 * thresholds) prevents level oscillation on the discrete ladder.
 *
 * The DTM controller is the paper's reference point: purely reactive
 * on the current hottest-block temperature against the thermal
 * design point, with a guard band.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace ramp {
namespace drm {

/** DRM feedback controller over a discrete DVS ladder. */
class DrmController
{
  public:
    struct Params
    {
        /** Lifetime FIT target (the qualification target). */
        double target_fit = 4000.0;
        /** Fractional overshoot that triggers a step down. */
        double down_margin = 0.02;
        /** Fractional slack that allows a step up. */
        double up_margin = 0.10;
        /** Minimum intervals between level changes (settling). */
        std::uint32_t settle_intervals = 3;
    };

    /**
     * @param params Control constants.
     * @param num_levels Size of the DVS ladder (> 0).
     * @param start_level Initial ladder index (< num_levels).
     */
    DrmController(Params params, std::size_t num_levels,
                  std::size_t start_level);

    /**
     * Feed one interval's lifetime-average FIT; returns the ladder
     * level to run the next interval at.
     */
    std::size_t observe(double avg_fit_so_far);

    /** Current ladder level. */
    std::size_t level() const { return level_; }

    /** Number of level changes so far. */
    std::uint64_t transitions() const { return transitions_; }

  private:
    Params params_;
    std::size_t num_levels_;
    std::size_t level_;
    std::uint32_t cooldown_ = 0;
    std::uint64_t transitions_ = 0;
};

/**
 * Slack-banking DRM controller: the same lifetime-average feedback
 * as DrmController, but against a *front-loaded* allowance instead
 * of a flat target. At the start of the control window the allowed
 * average FIT is target * (1 + bank_fraction); the allowance decays
 * linearly to exactly the target as the window completes, so early
 * intervals may spend banked reliability slack (running hotter and
 * faster than the steady-safe point) while the closing feedback
 * still steers the *final* average to the qualified budget.
 */
class SlackBankController
{
  public:
    struct Params
    {
        /** Lifetime FIT target (the qualification target). */
        double target_fit = 4000.0;
        /** Fraction of the FIT budget banked at progress 0. */
        double bank_fraction = 0.10;
        /** Fractional overshoot that triggers a step down. */
        double down_margin = 0.02;
        /** Fractional slack that allows a step up. */
        double up_margin = 0.10;
        /** Minimum intervals between level changes (settling). */
        std::uint32_t settle_intervals = 3;
    };

    SlackBankController(Params params, std::size_t num_levels,
                        std::size_t start_level);

    /** Average FIT allowed at @p progress through the window
     *  (progress in [0, 1]). */
    double allowedFit(double progress) const;

    /**
     * Feed one interval's lifetime-average FIT and the fraction of
     * the control window already elapsed; returns the ladder level
     * for the next interval.
     */
    std::size_t observe(double avg_fit_so_far, double progress);

    std::size_t level() const { return level_; }
    std::uint64_t transitions() const { return transitions_; }

  private:
    Params params_;
    std::size_t num_levels_;
    std::size_t level_;
    std::uint32_t cooldown_ = 0;
    std::uint64_t transitions_ = 0;
};

/** Reactive DTM controller: cap the current hottest temperature. */
class DtmController
{
  public:
    struct Params
    {
        /** Thermal design point (K). */
        double t_design_k = 370.0;
        /** Guard band below the limit before stepping back up (K). */
        double guard_k = 3.0;
        /** Minimum intervals between level changes. */
        std::uint32_t settle_intervals = 2;
    };

    DtmController(Params params, std::size_t num_levels,
                  std::size_t start_level);

    /** Feed the current hottest block temperature (K). */
    std::size_t observe(double max_temp_k);

    std::size_t level() const { return level_; }
    std::uint64_t transitions() const { return transitions_; }

  private:
    Params params_;
    std::size_t num_levels_;
    std::size_t level_;
    std::uint32_t cooldown_ = 0;
    std::uint64_t transitions_ = 0;
};

} // namespace drm
} // namespace ramp

