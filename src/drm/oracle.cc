#include "drm/oracle.hh"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "power/power.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace drm {

namespace {

struct OracleMetrics
{
    telemetry::Counter explores =
        telemetry::counter("oracle.explores");
    telemetry::Counter points = telemetry::counter("oracle.points");
    /** Points dropped from explorations (evaluation errors). */
    telemetry::Counter failed_points =
        telemetry::counter("oracle.failed_points");
    /** Wall time of one explore() (all points, both passes). */
    telemetry::Histogram explore_s =
        telemetry::histogram("oracle.explore_s", 0.0, 60.0, 60);
};

OracleMetrics &
oracleMetrics()
{
    static OracleMetrics m;
    return m;
}

} // namespace

double
operatingPointFit(const core::Qualification &qual,
                  const core::OperatingPoint &op)
{
    const auto report = core::steadyFit(
        qual, power::poweredFractions(op.config), op.temps_k,
        op.activity.activity, op.config.voltage_v,
        op.config.frequency_ghz);
    return report.totalFit();
}

sim::PerStructure<double>
alphaQualFromBaseline(const std::vector<core::OperatingPoint> &base_ops)
{
    if (base_ops.empty())
        util::fatal("alphaQualFromBaseline needs at least one app");
    // Section 3.7: alpha_qual is "the highest activity factor
    // obtained across our application suite" -- a single worst-case
    // number, applied to every structure. (Per-structure maxima
    // would under-provision the qualification margin the paper's
    // over-design results rely on.)
    double alpha = 0.0;
    for (const auto &op : base_ops)
        for (double a : op.activity.activity)
            alpha = std::max(alpha, a);
    sim::PerStructure<double> out;
    out.fill(alpha);
    return out;
}

OracleExplorer::OracleExplorer(core::EvalParams eval_params,
                               EvaluationCache *cache,
                               util::ThreadPool *pool)
    : evaluator_(eval_params), cache_(cache), pool_(pool)
{
}

util::BatchReport
OracleExplorer::forEach(std::size_t count,
                        const std::function<void(std::size_t)> &fn) const
{
    if (pool_)
        return pool_->parallelFor(count, fn);
    util::BatchReport report;
    report.items = count;
    for (std::size_t i = 0; i < count; ++i) {
        try {
            fn(i);
        } catch (const util::RampException &e) {
            report.failures.emplace_back(i, e.error());
        }
    }
    return report;
}

util::Result<core::OperatingPoint>
OracleExplorer::tryEvaluate(const sim::MachineConfig &cfg,
                            const workload::AppProfile &app) const
{
    if (!cache_)
        return evaluator_.tryEvaluate(cfg, app);

    const std::string key =
        EvaluationCache::key(cfg, app, evaluator_.params());
    if (auto hit = cache_->get(key)) {
        auto result =
            evaluator_.tryConvergeThermal(cfg, hit->activity,
                                          hit->stats);
        if (!result)
            return result;
        core::OperatingPoint &op = result.value();
        op.l1d_miss_ratio = hit->l1d_miss_ratio;
        op.l1i_miss_ratio = hit->l1i_miss_ratio;
        op.l2_miss_ratio = hit->l2_miss_ratio;
        return result;
    }

    auto result = evaluator_.tryEvaluate(cfg, app);
    if (!result)
        return result; // failed evaluations are never cached
    const core::OperatingPoint &op = result.value();
    CachedEvaluation rec;
    rec.activity = op.activity;
    rec.stats = op.stats;
    rec.l1d_miss_ratio = op.l1d_miss_ratio;
    rec.l1i_miss_ratio = op.l1i_miss_ratio;
    rec.l2_miss_ratio = op.l2_miss_ratio;
    cache_->put(key, rec);
    return result;
}

core::OperatingPoint
OracleExplorer::evaluate(const sim::MachineConfig &cfg,
                         const workload::AppProfile &app) const
{
    auto result = tryEvaluate(cfg, app);
    if (!result)
        util::fatal(util::cat("oracle evaluate: ",
                              result.error().str()));
    return std::move(result.value());
}

core::OperatingPoint
OracleExplorer::evaluateBase(const workload::AppProfile &app) const
{
    return evaluate(sim::baseMachine(), app);
}

ExploredApp
OracleExplorer::explore(const workload::AppProfile &app,
                        AdaptationSpace space) const
{
    auto &metrics = oracleMetrics();
    metrics.explores.add();
    telemetry::ScopedTimer timer(metrics.explore_s, "explore",
                                 "oracle");

    ExploredApp out;
    out.app_name = app.name;
    out.base = evaluateBase(app);
    const double base_perf = out.base.uopsPerSecond();

    const auto cfgs = configSpace(space);
    metrics.points.add(cfgs.size());
    timer.arg("points", static_cast<double>(cfgs.size()));
    out.points.resize(cfgs.size());
    auto eval_point = [&](std::size_t i) {
        auto result = tryEvaluate(cfgs[i], app);
        if (!result)
            throw util::RampException(result.error());
        ExploredPoint pt;
        pt.op = std::move(result.value());
        pt.perf_rel = pt.op.uopsPerSecond() / base_perf;
        out.points[i] = std::move(pt);
    };
    // Failed points are dropped by forEach and marked invalid here;
    // each decision is a pure function of the point, so the dropped
    // set (and thus the output) is identical at every thread count.
    auto mark_failures = [&](const util::BatchReport &report,
                             const std::vector<std::size_t> &index) {
        for (const auto &[n, err] : report.failures) {
            const std::size_t i = index.empty() ? n : index[n];
            out.points[i] = ExploredPoint{};
            out.points[i].valid = false;
            metrics.failed_points.add();
            util::warn(util::cat("oracle: dropped point ", i,
                                 " for ", app.name, ": ",
                                 err.str()));
        }
    };

    // Pass 1: one representative (the first occurrence) per unique
    // timing key. On a cold cache this is where every simulation
    // happens -- exactly one per key, the same work a serial sweep
    // does -- rather than racing duplicate-key points into redundant
    // simulations. Without a cache every point is its own
    // representative.
    std::vector<std::size_t> reps;
    std::vector<std::size_t> rest;
    if (cache_) {
        std::unordered_set<std::string> seen;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            const auto key = EvaluationCache::key(cfgs[i], app,
                                                 evaluator_.params());
            (seen.insert(key).second ? reps : rest).push_back(i);
        }
    } else {
        for (std::size_t i = 0; i < cfgs.size(); ++i)
            reps.push_back(i);
    }
    mark_failures(
        forEach(reps.size(),
                [&](std::size_t n) { eval_point(reps[n]); }),
        reps);

    // Pass 2: the duplicate-key points, all cache hits now (cheap
    // power/thermal re-convergence only), exactly as they would be
    // in a serial sweep that had already passed their key once.
    mark_failures(
        forEach(rest.size(),
                [&](std::size_t n) { eval_point(rest[n]); }),
        rest);
    return out;
}

namespace {

/**
 * Evaluate every point's constraint row under @p qual, then pick the
 * best-performing feasible one. When nothing is feasible, fall back
 * to the least-violating point per @p violation (lower = closer to
 * feasible). One steadyFit per point: winner values are carried from
 * the table instead of being recomputed.
 *
 * Failed evaluations never participate (no constraint row can be
 * computed from a default point); with @p require_converged,
 * non-converged points get their row computed for display but are
 * excluded from both the feasible choice and the fallback. If every
 * point is excluded the exploration is unusable and this is fatal.
 */
template <typename FeasibleFn, typename ViolationFn>
Selection
selectByConstraint(const ExploredApp &app,
                   const core::Qualification &qual,
                   bool require_converged, FeasibleFn feasible,
                   ViolationFn violation)
{
    Selection sel;
    sel.table.reserve(app.points.size());

    std::size_t best = 0;
    bool found = false;
    double best_perf = -1.0;
    std::size_t fallback = 0;
    bool has_fallback = false;
    double least_violation = 1e300;
    constexpr double inf = std::numeric_limits<double>::infinity();

    for (std::size_t i = 0; i < app.points.size(); ++i) {
        const ExploredPoint &xp = app.points[i];
        SelectionPoint pt;
        pt.converged = xp.op.converged;
        if (!xp.valid) {
            pt.valid = false;
            pt.fit = inf;
            pt.max_temp_k = inf;
            sel.table.push_back(pt);
            continue;
        }
        pt.perf_rel = xp.perf_rel;
        pt.fit = operatingPointFit(qual, xp.op);
        pt.max_temp_k = xp.op.maxTemp();
        pt.valid = !require_converged || pt.converged;
        if (!pt.valid) {
            sel.table.push_back(pt);
            continue;
        }
        pt.feasible = feasible(pt);
        if (!has_fallback || violation(pt) < least_violation) {
            least_violation = violation(pt);
            fallback = i;
            has_fallback = true;
        }
        if (pt.feasible && pt.perf_rel > best_perf) {
            best_perf = pt.perf_rel;
            best = i;
            found = true;
        }
        sel.table.push_back(pt);
    }

    if (!found && !has_fallback)
        util::fatal("oracle selection: every explored point is "
                    "invalid or non-converged; nothing to select");

    sel.index = found ? best : fallback;
    sel.feasible = found;
    sel.config = app.points[sel.index].op.config;
    sel.perf_rel = sel.table[sel.index].perf_rel;
    sel.fit = sel.table[sel.index].fit;
    sel.max_temp_k = sel.table[sel.index].max_temp_k;
    return sel;
}

} // namespace

Selection
selectDrm(const ExploredApp &app, const core::Qualification &qual)
{
    if (app.points.empty())
        util::fatal("selectDrm: empty exploration");

    const double target = qual.spec().target_fit;
    // DRM is the reliability-aware policy: a non-converged thermal
    // fixed point gives untrustworthy FIT, so such points are
    // excluded outright (require_converged).
    return selectByConstraint(
        app, qual, /*require_converged=*/true,
        [&](const SelectionPoint &pt) { return pt.fit <= target; },
        [](const SelectionPoint &pt) { return pt.fit; });
}

Selection
selectDtm(const ExploredApp &app, double t_design_k,
          const core::Qualification &qual)
{
    if (app.points.empty())
        util::fatal("selectDtm: empty exploration");

    // The DTM policy is reliability-oblivious: @p qual only feeds the
    // reported per-point and winner FIT values, never the choice. It
    // tolerates non-converged points (their temperature iterate is
    // still an upper-bound-ish signal and DTM reacts, not predicts).
    return selectByConstraint(
        app, qual, /*require_converged=*/false,
        [&](const SelectionPoint &pt) {
            return pt.max_temp_k <= t_design_k;
        },
        [](const SelectionPoint &pt) { return pt.max_temp_k; });
}

} // namespace drm
} // namespace ramp
