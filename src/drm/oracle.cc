#include "drm/oracle.hh"

#include <algorithm>
#include <unordered_set>

#include "power/power.hh"
#include "util/logging.hh"

namespace ramp {
namespace drm {

double
operatingPointFit(const core::Qualification &qual,
                  const core::OperatingPoint &op)
{
    const auto report = core::steadyFit(
        qual, power::poweredFractions(op.config), op.temps_k,
        op.activity.activity, op.config.voltage_v,
        op.config.frequency_ghz);
    return report.totalFit();
}

sim::PerStructure<double>
alphaQualFromBaseline(const std::vector<core::OperatingPoint> &base_ops)
{
    if (base_ops.empty())
        util::fatal("alphaQualFromBaseline needs at least one app");
    // Section 3.7: alpha_qual is "the highest activity factor
    // obtained across our application suite" -- a single worst-case
    // number, applied to every structure. (Per-structure maxima
    // would under-provision the qualification margin the paper's
    // over-design results rely on.)
    double alpha = 0.0;
    for (const auto &op : base_ops)
        for (double a : op.activity.activity)
            alpha = std::max(alpha, a);
    sim::PerStructure<double> out;
    out.fill(alpha);
    return out;
}

OracleExplorer::OracleExplorer(core::EvalParams eval_params,
                               EvaluationCache *cache,
                               util::ThreadPool *pool)
    : evaluator_(eval_params), cache_(cache), pool_(pool)
{
}

void
OracleExplorer::forEach(std::size_t count,
                        const std::function<void(std::size_t)> &fn) const
{
    if (pool_) {
        pool_->parallelFor(count, fn);
        return;
    }
    for (std::size_t i = 0; i < count; ++i)
        fn(i);
}

core::OperatingPoint
OracleExplorer::evaluate(const sim::MachineConfig &cfg,
                         const workload::AppProfile &app) const
{
    if (!cache_)
        return evaluator_.evaluate(cfg, app);

    const std::string key =
        EvaluationCache::key(cfg, app, evaluator_.params());
    if (auto hit = cache_->get(key)) {
        core::OperatingPoint op =
            evaluator_.convergeThermal(cfg, hit->activity, hit->stats);
        op.l1d_miss_ratio = hit->l1d_miss_ratio;
        op.l1i_miss_ratio = hit->l1i_miss_ratio;
        op.l2_miss_ratio = hit->l2_miss_ratio;
        return op;
    }

    core::OperatingPoint op = evaluator_.evaluate(cfg, app);
    CachedEvaluation rec;
    rec.activity = op.activity;
    rec.stats = op.stats;
    rec.l1d_miss_ratio = op.l1d_miss_ratio;
    rec.l1i_miss_ratio = op.l1i_miss_ratio;
    rec.l2_miss_ratio = op.l2_miss_ratio;
    cache_->put(key, rec);
    return op;
}

core::OperatingPoint
OracleExplorer::evaluateBase(const workload::AppProfile &app) const
{
    return evaluate(sim::baseMachine(), app);
}

ExploredApp
OracleExplorer::explore(const workload::AppProfile &app,
                        AdaptationSpace space) const
{
    ExploredApp out;
    out.app_name = app.name;
    out.base = evaluateBase(app);
    const double base_perf = out.base.uopsPerSecond();

    const auto cfgs = configSpace(space);
    out.points.resize(cfgs.size());
    auto eval_point = [&](std::size_t i) {
        ExploredPoint pt;
        pt.op = evaluate(cfgs[i], app);
        pt.perf_rel = pt.op.uopsPerSecond() / base_perf;
        out.points[i] = std::move(pt);
    };

    // Pass 1: one representative (the first occurrence) per unique
    // timing key. On a cold cache this is where every simulation
    // happens -- exactly one per key, the same work a serial sweep
    // does -- rather than racing duplicate-key points into redundant
    // simulations. Without a cache every point is its own
    // representative.
    std::vector<std::size_t> reps;
    std::vector<std::size_t> rest;
    if (cache_) {
        std::unordered_set<std::string> seen;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            const auto key = EvaluationCache::key(cfgs[i], app,
                                                 evaluator_.params());
            (seen.insert(key).second ? reps : rest).push_back(i);
        }
    } else {
        for (std::size_t i = 0; i < cfgs.size(); ++i)
            reps.push_back(i);
    }
    forEach(reps.size(), [&](std::size_t n) { eval_point(reps[n]); });

    // Pass 2: the duplicate-key points, all cache hits now (cheap
    // power/thermal re-convergence only), exactly as they would be
    // in a serial sweep that had already passed their key once.
    forEach(rest.size(), [&](std::size_t n) { eval_point(rest[n]); });
    return out;
}

namespace {

Selection
makeSelection(const ExploredApp &app, std::size_t index,
              bool feasible, double fit)
{
    Selection sel;
    sel.index = index;
    sel.feasible = feasible;
    sel.perf_rel = app.points[index].perf_rel;
    sel.fit = fit;
    sel.max_temp_k = app.points[index].op.maxTemp();
    return sel;
}

} // namespace

Selection
selectDrm(const ExploredApp &app, const core::Qualification &qual)
{
    if (app.points.empty())
        util::fatal("selectDrm: empty exploration");

    const double target = qual.spec().target_fit;
    std::size_t best = 0;
    bool found = false;
    double best_perf = -1.0;
    double best_fit = 0.0;
    std::size_t coolest = 0;
    double coolest_fit = 1e300;

    // One steadyFit per point: the winner's FIT is carried into the
    // selection instead of being recomputed.
    for (std::size_t i = 0; i < app.points.size(); ++i) {
        const double fit = operatingPointFit(qual, app.points[i].op);
        if (fit < coolest_fit) {
            coolest_fit = fit;
            coolest = i;
        }
        if (fit <= target && app.points[i].perf_rel > best_perf) {
            best_perf = app.points[i].perf_rel;
            best = i;
            best_fit = fit;
            found = true;
        }
    }
    return makeSelection(app, found ? best : coolest, found,
                         found ? best_fit : coolest_fit);
}

Selection
selectDtm(const ExploredApp &app, double t_design_k)
{
    if (app.points.empty())
        util::fatal("selectDtm: empty exploration");

    std::size_t best = 0;
    bool found = false;
    double best_perf = -1.0;
    std::size_t coolest = 0;
    double coolest_t = 1e300;

    for (std::size_t i = 0; i < app.points.size(); ++i) {
        const double t = app.points[i].op.maxTemp();
        if (t < coolest_t) {
            coolest_t = t;
            coolest = i;
        }
        if (t <= t_design_k && app.points[i].perf_rel > best_perf) {
            best_perf = app.points[i].perf_rel;
            best = i;
            found = true;
        }
    }

    Selection sel;
    sel.index = found ? best : coolest;
    sel.feasible = found;
    sel.perf_rel = app.points[sel.index].perf_rel;
    sel.max_temp_k = app.points[sel.index].op.maxTemp();
    // DTM is reliability-oblivious: without a qualification there is
    // no FIT to report. 0.0 is a sentinel, NOT a real failure rate --
    // comparisons needing one must use the Qualification overload.
    sel.fit = 0.0;
    return sel;
}

Selection
selectDtm(const ExploredApp &app, double t_design_k,
          const core::Qualification &qual)
{
    Selection sel = selectDtm(app, t_design_k);
    sel.fit = operatingPointFit(qual, app.points[sel.index].op);
    return sel;
}

} // namespace drm
} // namespace ramp
