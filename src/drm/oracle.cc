#include "drm/oracle.hh"

#include <algorithm>

#include "power/power.hh"
#include "util/logging.hh"

namespace ramp {
namespace drm {

double
operatingPointFit(const core::Qualification &qual,
                  const core::OperatingPoint &op)
{
    const auto report = core::steadyFit(
        qual, power::poweredFractions(op.config), op.temps_k,
        op.activity.activity, op.config.voltage_v,
        op.config.frequency_ghz);
    return report.totalFit();
}

sim::PerStructure<double>
alphaQualFromBaseline(const std::vector<core::OperatingPoint> &base_ops)
{
    if (base_ops.empty())
        util::fatal("alphaQualFromBaseline needs at least one app");
    // Section 3.7: alpha_qual is "the highest activity factor
    // obtained across our application suite" -- a single worst-case
    // number, applied to every structure. (Per-structure maxima
    // would under-provision the qualification margin the paper's
    // over-design results rely on.)
    double alpha = 0.0;
    for (const auto &op : base_ops)
        for (double a : op.activity.activity)
            alpha = std::max(alpha, a);
    sim::PerStructure<double> out;
    out.fill(alpha);
    return out;
}

OracleExplorer::OracleExplorer(core::EvalParams eval_params,
                               EvaluationCache *cache)
    : evaluator_(eval_params), cache_(cache)
{
}

core::OperatingPoint
OracleExplorer::evaluate(const sim::MachineConfig &cfg,
                         const workload::AppProfile &app) const
{
    if (!cache_)
        return evaluator_.evaluate(cfg, app);

    const std::string key =
        EvaluationCache::key(cfg, app, evaluator_.params());
    if (auto hit = cache_->get(key)) {
        core::OperatingPoint op =
            evaluator_.convergeThermal(cfg, hit->activity, hit->stats);
        op.l1d_miss_ratio = hit->l1d_miss_ratio;
        op.l1i_miss_ratio = hit->l1i_miss_ratio;
        op.l2_miss_ratio = hit->l2_miss_ratio;
        return op;
    }

    core::OperatingPoint op = evaluator_.evaluate(cfg, app);
    CachedEvaluation rec;
    rec.activity = op.activity;
    rec.stats = op.stats;
    rec.l1d_miss_ratio = op.l1d_miss_ratio;
    rec.l1i_miss_ratio = op.l1i_miss_ratio;
    rec.l2_miss_ratio = op.l2_miss_ratio;
    cache_->put(key, rec);
    return op;
}

core::OperatingPoint
OracleExplorer::evaluateBase(const workload::AppProfile &app) const
{
    return evaluate(sim::baseMachine(), app);
}

ExploredApp
OracleExplorer::explore(const workload::AppProfile &app,
                        AdaptationSpace space) const
{
    ExploredApp out;
    out.app_name = app.name;
    out.base = evaluateBase(app);
    const double base_perf = out.base.uopsPerSecond();

    for (const auto &cfg : configSpace(space)) {
        ExploredPoint pt;
        pt.op = evaluate(cfg, app);
        pt.perf_rel = pt.op.uopsPerSecond() / base_perf;
        out.points.push_back(std::move(pt));
    }
    return out;
}

namespace {

Selection
makeSelection(const ExploredApp &app, const core::Qualification &qual,
              std::size_t index, bool feasible)
{
    Selection sel;
    sel.index = index;
    sel.feasible = feasible;
    sel.perf_rel = app.points[index].perf_rel;
    sel.fit = operatingPointFit(qual, app.points[index].op);
    sel.max_temp_k = app.points[index].op.maxTemp();
    return sel;
}

} // namespace

Selection
selectDrm(const ExploredApp &app, const core::Qualification &qual)
{
    if (app.points.empty())
        util::fatal("selectDrm: empty exploration");

    const double target = qual.spec().target_fit;
    std::size_t best = 0;
    bool found = false;
    double best_perf = -1.0;
    std::size_t coolest = 0;
    double coolest_fit = 1e300;

    for (std::size_t i = 0; i < app.points.size(); ++i) {
        const double fit = operatingPointFit(qual, app.points[i].op);
        if (fit < coolest_fit) {
            coolest_fit = fit;
            coolest = i;
        }
        if (fit <= target && app.points[i].perf_rel > best_perf) {
            best_perf = app.points[i].perf_rel;
            best = i;
            found = true;
        }
    }
    return makeSelection(app, qual, found ? best : coolest, found);
}

Selection
selectDtm(const ExploredApp &app, double t_design_k)
{
    if (app.points.empty())
        util::fatal("selectDtm: empty exploration");

    std::size_t best = 0;
    bool found = false;
    double best_perf = -1.0;
    std::size_t coolest = 0;
    double coolest_t = 1e300;

    for (std::size_t i = 0; i < app.points.size(); ++i) {
        const double t = app.points[i].op.maxTemp();
        if (t < coolest_t) {
            coolest_t = t;
            coolest = i;
        }
        if (t <= t_design_k && app.points[i].perf_rel > best_perf) {
            best_perf = app.points[i].perf_rel;
            best = i;
            found = true;
        }
    }

    Selection sel;
    sel.index = found ? best : coolest;
    sel.feasible = found;
    sel.perf_rel = app.points[sel.index].perf_rel;
    sel.max_temp_k = app.points[sel.index].op.maxTemp();
    sel.fit = 0.0; // DTM is reliability-oblivious; caller fills if needed
    return sel;
}

} // namespace drm
} // namespace ramp
