#include "drm/oracle.hh"

#include <algorithm>
#include <unordered_set>

#include "power/power.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace drm {

namespace {

struct OracleMetrics
{
    telemetry::Counter explores =
        telemetry::counter("oracle.explores");
    telemetry::Counter points = telemetry::counter("oracle.points");
    /** Wall time of one explore() (all points, both passes). */
    telemetry::Histogram explore_s =
        telemetry::histogram("oracle.explore_s", 0.0, 60.0, 60);
};

OracleMetrics &
oracleMetrics()
{
    static OracleMetrics m;
    return m;
}

} // namespace

double
operatingPointFit(const core::Qualification &qual,
                  const core::OperatingPoint &op)
{
    const auto report = core::steadyFit(
        qual, power::poweredFractions(op.config), op.temps_k,
        op.activity.activity, op.config.voltage_v,
        op.config.frequency_ghz);
    return report.totalFit();
}

sim::PerStructure<double>
alphaQualFromBaseline(const std::vector<core::OperatingPoint> &base_ops)
{
    if (base_ops.empty())
        util::fatal("alphaQualFromBaseline needs at least one app");
    // Section 3.7: alpha_qual is "the highest activity factor
    // obtained across our application suite" -- a single worst-case
    // number, applied to every structure. (Per-structure maxima
    // would under-provision the qualification margin the paper's
    // over-design results rely on.)
    double alpha = 0.0;
    for (const auto &op : base_ops)
        for (double a : op.activity.activity)
            alpha = std::max(alpha, a);
    sim::PerStructure<double> out;
    out.fill(alpha);
    return out;
}

OracleExplorer::OracleExplorer(core::EvalParams eval_params,
                               EvaluationCache *cache,
                               util::ThreadPool *pool)
    : evaluator_(eval_params), cache_(cache), pool_(pool)
{
}

void
OracleExplorer::forEach(std::size_t count,
                        const std::function<void(std::size_t)> &fn) const
{
    if (pool_) {
        pool_->parallelFor(count, fn);
        return;
    }
    for (std::size_t i = 0; i < count; ++i)
        fn(i);
}

core::OperatingPoint
OracleExplorer::evaluate(const sim::MachineConfig &cfg,
                         const workload::AppProfile &app) const
{
    if (!cache_)
        return evaluator_.evaluate(cfg, app);

    const std::string key =
        EvaluationCache::key(cfg, app, evaluator_.params());
    if (auto hit = cache_->get(key)) {
        core::OperatingPoint op =
            evaluator_.convergeThermal(cfg, hit->activity, hit->stats);
        op.l1d_miss_ratio = hit->l1d_miss_ratio;
        op.l1i_miss_ratio = hit->l1i_miss_ratio;
        op.l2_miss_ratio = hit->l2_miss_ratio;
        return op;
    }

    core::OperatingPoint op = evaluator_.evaluate(cfg, app);
    CachedEvaluation rec;
    rec.activity = op.activity;
    rec.stats = op.stats;
    rec.l1d_miss_ratio = op.l1d_miss_ratio;
    rec.l1i_miss_ratio = op.l1i_miss_ratio;
    rec.l2_miss_ratio = op.l2_miss_ratio;
    cache_->put(key, rec);
    return op;
}

core::OperatingPoint
OracleExplorer::evaluateBase(const workload::AppProfile &app) const
{
    return evaluate(sim::baseMachine(), app);
}

ExploredApp
OracleExplorer::explore(const workload::AppProfile &app,
                        AdaptationSpace space) const
{
    auto &metrics = oracleMetrics();
    metrics.explores.add();
    telemetry::ScopedTimer timer(metrics.explore_s, "explore",
                                 "oracle");

    ExploredApp out;
    out.app_name = app.name;
    out.base = evaluateBase(app);
    const double base_perf = out.base.uopsPerSecond();

    const auto cfgs = configSpace(space);
    metrics.points.add(cfgs.size());
    timer.arg("points", static_cast<double>(cfgs.size()));
    out.points.resize(cfgs.size());
    auto eval_point = [&](std::size_t i) {
        ExploredPoint pt;
        pt.op = evaluate(cfgs[i], app);
        pt.perf_rel = pt.op.uopsPerSecond() / base_perf;
        out.points[i] = std::move(pt);
    };

    // Pass 1: one representative (the first occurrence) per unique
    // timing key. On a cold cache this is where every simulation
    // happens -- exactly one per key, the same work a serial sweep
    // does -- rather than racing duplicate-key points into redundant
    // simulations. Without a cache every point is its own
    // representative.
    std::vector<std::size_t> reps;
    std::vector<std::size_t> rest;
    if (cache_) {
        std::unordered_set<std::string> seen;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            const auto key = EvaluationCache::key(cfgs[i], app,
                                                 evaluator_.params());
            (seen.insert(key).second ? reps : rest).push_back(i);
        }
    } else {
        for (std::size_t i = 0; i < cfgs.size(); ++i)
            reps.push_back(i);
    }
    forEach(reps.size(), [&](std::size_t n) { eval_point(reps[n]); });

    // Pass 2: the duplicate-key points, all cache hits now (cheap
    // power/thermal re-convergence only), exactly as they would be
    // in a serial sweep that had already passed their key once.
    forEach(rest.size(), [&](std::size_t n) { eval_point(rest[n]); });
    return out;
}

namespace {

/**
 * Evaluate every point's constraint row under @p qual, then pick the
 * best-performing feasible one. When nothing is feasible, fall back
 * to the least-violating point per @p violation (lower = closer to
 * feasible). One steadyFit per point: winner values are carried from
 * the table instead of being recomputed.
 */
template <typename FeasibleFn, typename ViolationFn>
Selection
selectByConstraint(const ExploredApp &app,
                   const core::Qualification &qual,
                   FeasibleFn feasible, ViolationFn violation)
{
    Selection sel;
    sel.table.reserve(app.points.size());

    std::size_t best = 0;
    bool found = false;
    double best_perf = -1.0;
    std::size_t fallback = 0;
    double least_violation = 1e300;

    for (std::size_t i = 0; i < app.points.size(); ++i) {
        SelectionPoint pt;
        pt.perf_rel = app.points[i].perf_rel;
        pt.fit = operatingPointFit(qual, app.points[i].op);
        pt.max_temp_k = app.points[i].op.maxTemp();
        pt.feasible = feasible(pt);
        if (violation(pt) < least_violation) {
            least_violation = violation(pt);
            fallback = i;
        }
        if (pt.feasible && pt.perf_rel > best_perf) {
            best_perf = pt.perf_rel;
            best = i;
            found = true;
        }
        sel.table.push_back(pt);
    }

    sel.index = found ? best : fallback;
    sel.feasible = found;
    sel.config = app.points[sel.index].op.config;
    sel.perf_rel = sel.table[sel.index].perf_rel;
    sel.fit = sel.table[sel.index].fit;
    sel.max_temp_k = sel.table[sel.index].max_temp_k;
    return sel;
}

} // namespace

Selection
selectDrm(const ExploredApp &app, const core::Qualification &qual)
{
    if (app.points.empty())
        util::fatal("selectDrm: empty exploration");

    const double target = qual.spec().target_fit;
    return selectByConstraint(
        app, qual,
        [&](const SelectionPoint &pt) { return pt.fit <= target; },
        [](const SelectionPoint &pt) { return pt.fit; });
}

Selection
selectDtm(const ExploredApp &app, double t_design_k,
          const core::Qualification &qual)
{
    if (app.points.empty())
        util::fatal("selectDtm: empty exploration");

    // The DTM policy is reliability-oblivious: @p qual only feeds the
    // reported per-point and winner FIT values, never the choice.
    return selectByConstraint(
        app, qual,
        [&](const SelectionPoint &pt) {
            return pt.max_temp_k <= t_design_k;
        },
        [](const SelectionPoint &pt) { return pt.max_temp_k; });
}

} // namespace drm
} // namespace ramp
