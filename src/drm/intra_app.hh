/**
 * @file
 * Intra-application DRM (paper Sections 5 and 8).
 *
 * The paper's oracle adapts once per application run and explicitly
 * notes it "does not exploit intra-application variability". This
 * module does: for a phased application it picks a DVS rung *per
 * phase*, maximising time-weighted performance subject to the
 * time-weighted FIT staying within target. Reliability is a budget
 * over time (Section 4), so a hot compute phase can be throttled
 * while the cooler memory phase runs fast -- or vice versa -- as long
 * as the lifetime average meets the target.
 *
 * Phase wall-times depend on the chosen frequencies, so the
 * feasibility set is coupled; with a handful of phases and eleven
 * rungs the assignment space is enumerated exactly.
 */

#pragma once

#include <vector>

#include "core/engine.hh"
#include "core/evaluator.hh"
#include "core/qualification.hh"
#include "drm/adaptation.hh"
#include "drm/eval_cache.hh"
#include "drm/oracle.hh"
#include "workload/profile.hh"

namespace ramp {
namespace drm {

/** Result of the per-phase oracle. */
struct IntraAppResult
{
    /** Chosen DVS rung index per phase. */
    std::vector<std::size_t> rung_per_phase;

    /** Time-weighted FIT of the chosen assignment. */
    double fit = 0.0;

    /** Performance relative to the base machine. */
    double perf_rel = 0.0;

    /** The Section 5 per-application oracle -- the best *uniform*
     *  rung -- evaluated on the same phase-composed basis, for
     *  comparison. Its `index` is the chosen ladder rung. */
    Selection per_app;

    /** False when no assignment met the target (the least-violating
     *  assignment is reported). */
    bool feasible = false;

    /** Intra-app gain over the per-application oracle. */
    double gainOverPerApp() const
    {
        return per_app.perf_rel > 0.0 ? perf_rel / per_app.perf_rel
                                      : 0.0;
    }
};

/** Explores per-phase DVS assignments for phased applications. */
class IntraAppExplorer
{
  public:
    /**
     * @param eval_params Simulation controls.
     * @param cache Optional persistent timing cache (must outlive
     *        the explorer).
     * @param pool Optional thread pool the (phase, rung) table fill
     *        fans out across (must outlive the explorer).
     */
    explicit IntraAppExplorer(core::EvalParams eval_params = {},
                              EvaluationCache *cache = nullptr,
                              util::ThreadPool *pool = nullptr);

    /**
     * Solve the per-phase assignment for one application under one
     * qualification. Works for single-phase applications too (then
     * it degenerates to the per-application oracle).
     */
    IntraAppResult explore(const workload::AppProfile &app,
                           const core::Qualification &qual) const;

  private:
    core::EvalParams eval_params_;
    EvaluationCache *cache_;
    util::ThreadPool *pool_;
};

} // namespace drm
} // namespace ramp

