/**
 * @file
 * Persistent cache of timing-simulation results.
 *
 * Exploring an adaptation space costs one timing simulation per
 * (application, configuration) pair; the power/thermal fixed point
 * and FIT evaluation on top are cheap. The cache stores the expensive
 * part -- the measured activity sample and core statistics -- keyed
 * by everything that determines it, so reproduction benches sharing
 * a space (e.g. Figure 2 and Figure 3 both explore ArchDVS) reuse
 * each other's simulations across processes.
 *
 * The format is a plain text append-log, one record per line; unknown
 * or corrupt lines are ignored (the cache is an optimisation, never a
 * correctness dependency). Loading compacts the log in place: stale
 * versions, corrupt lines, and superseded duplicates are dropped and
 * the file rewritten, so it stops growing unboundedly across runs.
 *
 * The in-memory map is concurrency-safe (shared_mutex: concurrent
 * get(), exclusive put()) and file appends go through one serialized
 * appender opened once, so parallel exploration workers can share a
 * cache without torn or lost lines. Cross-*process* concurrency:
 * simultaneous appenders interleave whole lines safely, and an
 * advisory flock (held shared on a <path>.lock sidecar for each
 * cache's lifetime, taken exclusive to compact) keeps one process
 * from compacting while another holds the log open -- without it the
 * compactor's rename would leave the other process appending to an
 * unlinked inode, silently losing *every* record it writes for the
 * rest of its run, not just in-flight lines. On platforms without
 * flock (or against uncooperative writers) that whole-run loss is
 * still possible; it costs re-simulation on the next cold run -- an
 * optimisation loss, never a correctness one.
 */

#pragma once

#include <atomic>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>

#include "core/evaluator.hh"
#include "sim/machine.hh"
#include "workload/profile.hh"

namespace ramp {
namespace drm {

/** The cached (expensive) part of an operating-point evaluation. */
struct CachedEvaluation
{
    sim::ActivitySample activity;
    sim::CoreStats stats;
    double l1d_miss_ratio = 0.0;
    double l1i_miss_ratio = 0.0;
    double l2_miss_ratio = 0.0;
};

/** File-backed map from evaluation keys to measured samples. */
class EvaluationCache
{
  public:
    /** Usage counters, cheap enough to keep always-on. */
    struct Stats
    {
        std::size_t hits = 0;     ///< get() found a record.
        std::size_t misses = 0;   ///< get() found nothing.
        std::size_t appended = 0; ///< put() records written to file.
        std::size_t loaded = 0;   ///< Records read at construction.
        /** Lines the load-time compaction dropped (corrupt, stale
         *  version, or superseded duplicates). */
        std::size_t compacted = 0;
        /** Corrupt/stale lines copied to the <path>.quarantine
         *  sidecar at load (never silently discarded). */
        std::size_t quarantined = 0;
    };

    /** Create an empty cache (no file attached). */
    EvaluationCache() = default;

    /**
     * Attach a backing file, load any existing records from it, and
     * compact it (drop corrupt/stale/duplicate lines) if the log
     * holds anything but one line per live record. Missing files are
     * fine (cold cache); an empty path means in-memory only, same as
     * the default constructor.
     */
    explicit EvaluationCache(std::string path);

    /** Releases the advisory cross-process lock, if one is held. */
    ~EvaluationCache();

    EvaluationCache(const EvaluationCache &) = delete;
    EvaluationCache &operator=(const EvaluationCache &) = delete;

    /** Key for one (application, configuration, params) evaluation. */
    static std::string key(const sim::MachineConfig &cfg,
                           const workload::AppProfile &app,
                           const core::EvalParams &params);

    /** Look up a record; nullopt on miss. Thread-safe. */
    std::optional<CachedEvaluation> get(const std::string &key) const;

    /** Whether a record exists, without counting a hit or miss (the
     *  surrogate layer probes history without using it). */
    bool contains(const std::string &key) const;

    /** Insert (or overwrite) a record and append it to the file.
     *  Thread-safe; appends are serialized and line-atomic. */
    void put(const std::string &key, const CachedEvaluation &value);

    /** Number of records held. */
    std::size_t size() const;

    /** Usage counters since construction. */
    Stats stats() const;

  private:
    void writeRecord(std::ostream &os, const std::string &key,
                     const CachedEvaluation &v) const;

    /**
     * Rewrite the log as one line per live record. LockContention
     * when another process holds the cache open (benign: compaction
     * is deferred to a future exclusive holder), IoFailure when the
     * rewrite itself fails (the log is left as-is).
     */
    [[nodiscard]] util::Result<void> tryCompact(std::size_t lines);

    /** Open (or reopen) the appender with bounded retry + backoff;
     *  false when it stays unopenable. Caller holds file_mutex_ (or
     *  is the constructor). */
    bool openAppender();

    std::string path_;
    // ramp-lint: guarded_by(mutex_)
    std::map<std::string, CachedEvaluation> entries_;
    mutable std::shared_mutex mutex_; ///< Guards entries_.

    std::mutex file_mutex_; ///< Serializes every file append.
    std::ofstream appender_;
    /** fd of the <path>.lock sidecar, flock'd shared for the cache's
     *  lifetime (exclusive during compaction); -1 when unavailable. */
    int lock_fd_ = -1;

    mutable std::atomic<std::size_t> hits_{0};
    mutable std::atomic<std::size_t> misses_{0};
    std::atomic<std::size_t> appended_{0};
    std::size_t loaded_ = 0;
    std::size_t compacted_ = 0;
    std::size_t quarantined_ = 0;
};

} // namespace drm
} // namespace ramp

