/**
 * @file
 * Persistent cache of timing-simulation results.
 *
 * Exploring an adaptation space costs one timing simulation per
 * (application, configuration) pair; the power/thermal fixed point
 * and FIT evaluation on top are cheap. The cache stores the expensive
 * part -- the measured activity sample and core statistics -- keyed
 * by everything that determines it, so reproduction benches sharing
 * a space (e.g. Figure 2 and Figure 3 both explore ArchDVS) reuse
 * each other's simulations across processes.
 *
 * The format is a plain text file, one record per line; unknown or
 * corrupt lines are ignored (the cache is an optimisation, never a
 * correctness dependency).
 */

#ifndef RAMP_DRM_EVAL_CACHE_HH
#define RAMP_DRM_EVAL_CACHE_HH

#include <map>
#include <optional>
#include <string>

#include "core/evaluator.hh"
#include "sim/machine.hh"
#include "workload/profile.hh"

namespace ramp {
namespace drm {

/** The cached (expensive) part of an operating-point evaluation. */
struct CachedEvaluation
{
    sim::ActivitySample activity;
    sim::CoreStats stats;
    double l1d_miss_ratio = 0.0;
    double l1i_miss_ratio = 0.0;
    double l2_miss_ratio = 0.0;
};

/** File-backed map from evaluation keys to measured samples. */
class EvaluationCache
{
  public:
    /** Create an empty cache (no file attached). */
    EvaluationCache() = default;

    /**
     * Attach a backing file and load any existing records from it.
     * Missing files are fine (cold cache).
     */
    explicit EvaluationCache(std::string path);

    /** Key for one (application, configuration, params) evaluation. */
    static std::string key(const sim::MachineConfig &cfg,
                           const workload::AppProfile &app,
                           const core::EvalParams &params);

    /** Look up a record; nullopt on miss. */
    std::optional<CachedEvaluation> get(const std::string &key) const;

    /** Insert (or overwrite) a record and append it to the file. */
    void put(const std::string &key, const CachedEvaluation &value);

    /** Number of records held. */
    std::size_t size() const { return entries_.size(); }

  private:
    void appendToFile(const std::string &key,
                      const CachedEvaluation &value) const;

    std::string path_;
    std::map<std::string, CachedEvaluation> entries_;
};

} // namespace drm
} // namespace ramp

#endif // RAMP_DRM_EVAL_CACHE_HH
