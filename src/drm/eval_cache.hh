/**
 * @file
 * Persistent cache of timing-simulation results.
 *
 * Exploring an adaptation space costs one timing simulation per
 * (application, configuration) pair; the power/thermal fixed point
 * and FIT evaluation on top are cheap. The cache stores the expensive
 * part -- the measured activity sample and core statistics -- keyed
 * by everything that determines it, so reproduction benches sharing
 * a space (e.g. Figure 2 and Figure 3 both explore ArchDVS) reuse
 * each other's simulations across processes.
 *
 * The format is a plain text append-log, one record per line; unknown
 * or corrupt lines are ignored (the cache is an optimisation, never a
 * correctness dependency). Loading compacts the log in place: stale
 * versions, corrupt lines, and superseded duplicates are dropped and
 * the file rewritten, so it stops growing unboundedly across runs.
 *
 * The in-memory map is concurrency-safe (shared_mutex: concurrent
 * get(), exclusive put()) and file appends go through one serialized
 * appender opened once, so parallel exploration workers can share a
 * cache without torn or lost lines. Cross-*process* concurrency:
 * simultaneous appenders interleave whole lines safely, and an
 * advisory flock (held shared on a <path>.lock sidecar for each
 * cache's lifetime, taken exclusive to compact) keeps one process
 * from compacting while another holds the log open -- without it the
 * compactor's rename would leave the other process appending to an
 * unlinked inode, silently losing *every* record it writes for the
 * rest of its run, not just in-flight lines. On platforms without
 * flock (or against uncooperative writers) that whole-run loss is
 * still possible; it costs re-simulation on the next cold run -- an
 * optimisation loss, never a correctness one.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hh"
#include "sim/machine.hh"
#include "workload/profile.hh"

namespace ramp {
namespace drm {

/** The cached (expensive) part of an operating-point evaluation. */
struct CachedEvaluation
{
    sim::ActivitySample activity;
    sim::CoreStats stats;
    double l1d_miss_ratio = 0.0;
    double l1i_miss_ratio = 0.0;
    double l2_miss_ratio = 0.0;
};

/** File-backed map from evaluation keys to measured samples. */
class EvaluationCache
{
  public:
    /** Usage counters, cheap enough to keep always-on. */
    struct Stats
    {
        std::size_t hits = 0;     ///< get() found a record.
        std::size_t misses = 0;   ///< get() found nothing.
        std::size_t appended = 0; ///< put() records written to file.
        std::size_t loaded = 0;   ///< Records read at construction.
        /** Lines the load-time compaction dropped (corrupt, stale
         *  version, or superseded duplicates). */
        std::size_t compacted = 0;
        /** Corrupt/stale lines copied to the <path>.quarantine
         *  sidecar at load (never silently discarded). */
        std::size_t quarantined = 0;
    };

    /** Create an empty cache (no file attached). */
    EvaluationCache() = default;

    /**
     * Attach a backing file, load any existing records from it, and
     * compact it (drop corrupt/stale/duplicate lines) if the log
     * holds anything but one line per live record. Missing files are
     * fine (cold cache); an empty path means in-memory only, same as
     * the default constructor.
     *
     * With @p replicated the cache runs in the cluster's replicated
     * mode: the log belongs to exactly one process (a backend's
     * private shard copy, re-warmable from peers), so the advisory
     * flock sidecar is not taken; instead the log carries a
     * `!epoch N` header and every compaction rewrites it with the
     * epoch bumped -- peers stamp replicated records with the epoch
     * so a stale snapshot is distinguishable from a live tail.
     */
    explicit EvaluationCache(std::string path, bool replicated = false);

    /** Releases the advisory cross-process lock, if one is held. */
    ~EvaluationCache();

    EvaluationCache(const EvaluationCache &) = delete;
    EvaluationCache &operator=(const EvaluationCache &) = delete;

    /** Key for one (application, configuration, params) evaluation. */
    static std::string key(const sim::MachineConfig &cfg,
                           const workload::AppProfile &app,
                           const core::EvalParams &params);

    /** Look up a record; nullopt on miss. Thread-safe. */
    std::optional<CachedEvaluation> get(const std::string &key) const;

    /** Whether a record exists, without counting a hit or miss (the
     *  surrogate layer probes history without using it). */
    bool contains(const std::string &key) const;

    /** Insert (or overwrite) a record and append it to the file.
     *  Thread-safe; appends are serialized and line-atomic. */
    void put(const std::string &key, const CachedEvaluation &value);

    /** Number of records held. */
    std::size_t size() const;

    /** Usage counters since construction. */
    Stats stats() const;

    /** Compaction epoch (replicated mode; 0 for a fresh log). */
    std::uint64_t epoch() const
    {
        return epoch_.load(std::memory_order_relaxed);
    }

    /**
     * Observes every locally-originated put() with the record's key
     * and its serialized line (no trailing newline). Replicated-mode
     * hook: the replicator tails appends through this and forwards
     * them to peers. Ingested peer records (putSerialized) do NOT
     * fire it, so replication cannot echo. Install before the cache
     * is used concurrently; not thread-safe against in-flight puts.
     */
    using AppendObserver =
        std::function<void(const std::string &key,
                           const std::string &line)>;
    void setAppendObserver(AppendObserver observer);

    /**
     * Snapshot every live record as (key, serialized line) pairs --
     * the full-resync payload a peer replays through putSerialized.
     * Thread-safe.
     */
    std::vector<std::pair<std::string, std::string>>
    exportRecords() const;

    /**
     * Ingest one serialized record line from a peer (cache_append).
     * Idempotent by key: an already-present key is acknowledged
     * without applying, so replayed snapshots and echoes are free.
     * Malformed or stale-version lines are rejected (false) and never
     * touch the log. Applied records append to the file but do not
     * fire the observer. Thread-safe. Returns whether the record was
     * newly applied.
     */
    bool putSerialized(const std::string &key,
                       const std::string &line);

  private:
    void writeRecord(std::ostream &os, const std::string &key,
                     const CachedEvaluation &v) const;

    /**
     * Rewrite the log as one line per live record. LockContention
     * when another process holds the cache open (benign: compaction
     * is deferred to a future exclusive holder), IoFailure when the
     * rewrite itself fails (the log is left as-is).
     */
    [[nodiscard]] util::Result<void> tryCompact(std::size_t lines);

    /** Open (or reopen) the appender with bounded retry + backoff;
     *  false when it stays unopenable. Caller holds file_mutex_ (or
     *  is the constructor). */
    bool openAppender();

    /** Append one already-serialized line to the log (caller formats
     *  and, for local puts, fault-corrupts). Takes file_mutex_. */
    void appendLine(const std::string &text);

    std::string path_;
    bool replicated_ = false;
    std::atomic<std::uint64_t> epoch_{0};
    AppendObserver observer_;
    // ramp-lint: guarded_by(mutex_)
    std::map<std::string, CachedEvaluation> entries_;
    mutable std::shared_mutex mutex_; ///< Guards entries_.

    std::mutex file_mutex_; ///< Serializes every file append.
    std::ofstream appender_;
    /** fd of the <path>.lock sidecar, flock'd shared for the cache's
     *  lifetime (exclusive during compaction); -1 when unavailable. */
    int lock_fd_ = -1;

    mutable std::atomic<std::size_t> hits_{0};
    mutable std::atomic<std::size_t> misses_{0};
    std::atomic<std::size_t> appended_{0};
    std::size_t loaded_ = 0;
    std::size_t compacted_ = 0;
    std::size_t quarantined_ = 0;
};

} // namespace drm
} // namespace ramp

