/**
 * @file
 * Closed-loop transient DRM/DTM simulation.
 *
 * Runs an application on the base microarchitecture with a live DVS
 * ladder, a transient RC thermal model, the RAMP engine accumulating
 * FIT over time, and a feedback controller (DRM steering on the
 * lifetime-average FIT, DTM on the instantaneous hottest block).
 *
 * Timing note: block thermal time constants are milliseconds and the
 * heat sink's is minutes, while cycle-level simulation covers only
 * fractions of a millisecond per interval. Exactly like the paper
 * (which evaluates temperature at 1 s granularity over much shorter
 * simulated windows), each measured interval is taken as
 * representative of a longer wall-clock span: the measured activity
 * is held for `represented_time_s` when advancing the thermal state
 * and the FIT clock. The heat sink is initialised with the
 * steady-state two-pass method (Section 6.3).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hh"
#include "core/qualification.hh"
#include "drm/adaptation.hh"
#include "drm/controller.hh"
#include "power/power.hh"
#include "thermal/model.hh"
#include "workload/profile.hh"

namespace ramp {
namespace drm {

/** Which feedback policy drives the DVS ladder. */
enum class Policy {
    None,  ///< Pin the base operating point (4 GHz / 1.0 V).
    Drm,   ///< DrmController on lifetime-average FIT.
    Dtm,   ///< DtmController on instantaneous max temperature.
};

/** Controls for a transient run. */
struct TransientParams
{
    std::uint64_t interval_uops = 60'000;  ///< Simulated per interval.
    double represented_time_s = 0.1;       ///< Wall time per interval.
    std::uint32_t num_intervals = 120;
    std::uint64_t warmup_uops = 200'000;
    std::uint64_t seed = 1;

    DrmController::Params drm{};
    DtmController::Params dtm{};
    power::PowerParams power{};
    thermal::ThermalParams thermal{};
};

/** One interval of the recorded trace. */
struct TransientSample
{
    std::size_t level = 0;        ///< DVS ladder index used.
    double frequency_ghz = 0.0;
    double voltage_v = 0.0;
    double ipc = 0.0;
    double max_temp_k = 0.0;      ///< Hottest block after the step.
    double total_power_w = 0.0;
    double avg_fit = 0.0;         ///< Lifetime-average FIT so far.
};

/** Outcome of a transient run. */
struct TransientResult
{
    std::vector<TransientSample> trace;
    double final_avg_fit = 0.0;
    /** Mean absolute performance (retired uops per second); compare
     *  against a Policy::None run of the same app for a relative
     *  number. */
    double avg_uops_per_second = 0.0;
    double max_temp_seen_k = 0.0;
    std::uint64_t level_transitions = 0;

    /** Intervals whose hottest block exceeded the given limit. */
    std::uint32_t thermalViolations(double t_design_k) const;
};

/** The closed-loop runner. */
class TransientRunner
{
  public:
    explicit TransientRunner(TransientParams params = {});

    /**
     * Run one application under the given policy and qualification.
     * Deterministic in all inputs.
     */
    TransientResult run(const workload::AppProfile &app,
                        const core::Qualification &qual,
                        Policy policy) const;

    const TransientParams &params() const { return params_; }

  private:
    TransientParams params_;
};

} // namespace drm
} // namespace ramp

