/**
 * @file
 * Closed-loop transient DRM/DTM simulation.
 *
 * Runs an application on the base microarchitecture with a live DVS
 * ladder, a transient RC thermal model, the RAMP engine accumulating
 * FIT over time, and a feedback controller (DRM steering on the
 * lifetime-average FIT, DTM on the instantaneous hottest block).
 *
 * Timing note: block thermal time constants are milliseconds and the
 * heat sink's is minutes, while cycle-level simulation covers only
 * fractions of a millisecond per interval. Exactly like the paper
 * (which evaluates temperature at 1 s granularity over much shorter
 * simulated windows), each measured interval is taken as
 * representative of a longer wall-clock span: the measured activity
 * is held for `represented_time_s` when advancing the thermal state
 * and the FIT clock. The heat sink is initialised with the
 * steady-state two-pass method (Section 6.3).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hh"
#include "core/qualification.hh"
#include "drm/adaptation.hh"
#include "drm/controller.hh"
#include "fault/sensor_channel.hh"
#include "power/power.hh"
#include "thermal/model.hh"
#include "workload/profile.hh"

namespace ramp {
namespace drm {

/** Which feedback policy drives the DVS ladder. */
enum class Policy {
    None,     ///< Pin the base operating point (4 GHz / 1.0 V).
    Drm,      ///< DrmController on lifetime-average FIT.
    Dtm,      ///< DtmController on instantaneous max temperature.
    SlackDrm, ///< SlackBankController: front-loaded FIT allowance.
};

/** Controls for a transient run. */
struct TransientParams
{
    std::uint64_t interval_uops = 60'000;  ///< Simulated per interval.
    double represented_time_s = 0.1;       ///< Wall time per interval.
    std::uint32_t num_intervals = 120;
    std::uint64_t warmup_uops = 200'000;
    std::uint64_t seed = 1;

    DrmController::Params drm{};
    DtmController::Params dtm{};
    SlackBankController::Params slack{};
    power::PowerParams power{};
    thermal::ThermalParams thermal{};

    /** Conditioning in front of the DTM controller's temperature
     *  input. Valid unspiked readings pass through bit-exactly, so a
     *  fault-free run is unchanged by the channel's presence. The
     *  spike threshold must clear the largest legitimate
     *  interval-to-interval swing -- level changes move near-steady
     *  block temperatures by tens of kelvin -- so it only rejects
     *  physically impossible jumps. */
    fault::SensorChannel::Params temp_channel{
        .label = "dtm.temp",
        .min_valid = 250.0,
        .max_valid = 1000.0,
        .spike_threshold = 40.0,
        .failsafe_after = 5,
        .release_after = 3,
        .stuck_after = 3,
    };
    /** Conditioning in front of the DRM controller's FIT input. The
     *  lifetime average moves slowly, so despiking stays off and
     *  plausibility plus stuck-at detection carry the weight. */
    fault::SensorChannel::Params fit_channel{
        .label = "drm.fit",
        .min_valid = 0.0,
        .max_valid = 1e9,
        .spike_threshold = 0.0,
        .failsafe_after = 5,
        .release_after = 3,
        .stuck_after = 0,
    };
    /** Ladder level forced while a channel is in fail-safe. Level 0
     *  is the bottom of the ladder: lowest frequency/voltage, the
     *  safest point for both temperature and wear. */
    std::size_t failsafe_level = 0;
};

/** One interval of the recorded trace. */
struct TransientSample
{
    std::size_t level = 0;        ///< DVS ladder index used.
    double frequency_ghz = 0.0;
    double voltage_v = 0.0;
    double ipc = 0.0;
    double max_temp_k = 0.0;      ///< Hottest block after the step (true).
    double total_power_w = 0.0;
    double avg_fit = 0.0;         ///< Lifetime-average FIT so far (true).
    /** What the controller saw: the (possibly faulted) reading after
     *  SensorChannel conditioning. Equal to the true values on a
     *  fault-free run. */
    double sensed_temp_k = 0.0;
    double sensed_fit = 0.0;
    /** The active channel's fail-safe latch was engaged after this
     *  interval's reading (it forces the next interval's level). */
    bool failsafe = false;
};

/** Outcome of a transient run. */
struct TransientResult
{
    std::vector<TransientSample> trace;
    double final_avg_fit = 0.0;
    /** Mean absolute performance (retired uops per second); compare
     *  against a Policy::None run of the same app for a relative
     *  number. */
    double avg_uops_per_second = 0.0;
    double max_temp_seen_k = 0.0;
    std::uint64_t level_transitions = 0;

    /** Fault-injection and graceful-degradation tallies for the run.
     *  All zero on a fault-free run. */
    struct Degradation
    {
        std::uint64_t injected_faults = 0;   ///< Sensor + power faults.
        std::uint64_t invalid_readings = 0;  ///< Rejected by a channel.
        std::uint64_t fallbacks = 0;         ///< Last-known-good used.
        std::uint64_t despiked = 0;          ///< Median-replaced readings.
        std::uint64_t failsafe_engages = 0;  ///< Fail-safe latch entries.
        std::uint64_t failsafe_intervals = 0;///< Intervals at forced level.
        std::uint64_t power_holds = 0;       ///< Non-finite power held.
    };
    Degradation degradation;

    /** Intervals whose hottest block exceeded the given limit. */
    std::uint32_t thermalViolations(double t_design_k) const;
};

/** The closed-loop runner. */
class TransientRunner
{
  public:
    explicit TransientRunner(TransientParams params = {});

    /**
     * Run one application under the given policy and qualification.
     * Deterministic in all inputs.
     */
    TransientResult run(const workload::AppProfile &app,
                        const core::Qualification &qual,
                        Policy policy) const;

    const TransientParams &params() const { return params_; }

  private:
    TransientParams params_;
};

} // namespace drm
} // namespace ramp

