#include "util/net.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.hh"

namespace ramp {
namespace util {

namespace {

using Clock = std::chrono::steady_clock;

RampError
errnoError(const char *what)
{
    return RampError{ErrorCode::IoFailure,
                     cat(what, ": ", std::strerror(errno))};
}

/** Milliseconds left until @p deadline; nullopt = no deadline. -1
 *  for poll() means wait forever; an expired deadline clamps to 0 so
 *  poll still reports already-ready fds. */
int
remainingMs(const std::optional<Clock::time_point> &deadline)
{
    if (!deadline)
        return -1;
    const auto left = std::chrono::duration_cast<
        std::chrono::milliseconds>(*deadline - Clock::now());
    return left.count() < 0 ? 0 : static_cast<int>(left.count());
}

std::optional<Clock::time_point>
deadlineFrom(int timeout_ms)
{
    if (timeout_ms < 0)
        return std::nullopt;
    return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

/** Wait for @p events on @p fd. Ok when ready, Timeout when the
 *  deadline passed, IoFailure on poll errors. POLLHUP/POLLERR count
 *  as ready: the subsequent read/write reports the condition. */
Result<void>
waitFor(int fd, short events,
        const std::optional<Clock::time_point> &deadline)
{
    for (;;) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = events;
        pfd.revents = 0;
        const int rc = ::poll(&pfd, 1, remainingMs(deadline));
        if (rc > 0)
            return {};
        if (rc == 0)
            return RampError{ErrorCode::Timeout,
                             "deadline elapsed waiting for the peer"};
        if (errno == EINTR)
            continue;
        return errnoError("poll");
    }
}

} // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Result<Listener>
listenTcp(std::uint16_t port, int backlog)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return errnoError("socket");

    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return errnoError("bind");
    if (::listen(sock.fd(), backlog) != 0)
        return errnoError("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return errnoError("getsockname");

    Listener out;
    out.socket = std::move(sock);
    out.port = ntohs(addr.sin_port);
    return out;
}

Result<Socket>
acceptTcp(const Socket &listener, int timeout_ms)
{
    auto ready = waitFor(listener.fd(), POLLIN,
                         deadlineFrom(timeout_ms));
    if (!ready)
        return ready.error();
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0)
        return errnoError("accept");
    return Socket(fd);
}

Result<Socket>
connectTcp(std::uint16_t port, int timeout_ms)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return errnoError("socket");

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    // Loopback connects complete (or fail) immediately in practice;
    // a blocking connect with the deadline applied to the first use
    // keeps this simple and still bounded.
    (void)timeout_ms;
    if (::connect(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return errnoError("connect");
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof(one));
    return sock;
}

namespace {

/** readExact against an absolute deadline (shared across the reads
 *  that make up one frame). */
Result<std::optional<std::string>>
readExactUntil(const Socket &sock, std::size_t n,
               const std::optional<Clock::time_point> &deadline)
{
    std::string out;
    out.resize(n);
    std::size_t got = 0;
    while (got < n) {
        // Only EINTR warrants a retry. EAGAIN/EWOULDBLOCK on a
        // blocking socket means a socket-level timeout (SO_RCVTIMEO)
        // fired -- retrying would spin past the caller's deadline,
        // one half-frame at a time, forever on a stalled peer. When
        // the caller supplied no deadline, recv runs ungated so a
        // socket timeout still gets its chance to fire (a poll()
        // with no deadline would otherwise defeat it silently).
        if (deadline) {
            auto ready = waitFor(sock.fd(), POLLIN, deadline);
            if (!ready)
                return ready.error();
        }
        const ssize_t rc =
            ::recv(sock.fd(), out.data() + got, n - got, 0);
        if (rc > 0) {
            got += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc == 0) {
            if (got == 0)
                return std::optional<std::string>(std::nullopt);
            return RampError{ErrorCode::IoFailure,
                             cat("peer closed mid-read (", got,
                                 " of ", n, " bytes)")};
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return RampError{ErrorCode::Timeout,
                             cat("socket receive timeout (", got,
                                 " of ", n, " bytes)")};
        return errnoError("recv");
    }
    return std::optional<std::string>(std::move(out));
}

} // namespace

Result<std::optional<std::string>>
readExact(const Socket &sock, std::size_t n, int timeout_ms)
{
    return readExactUntil(sock, n, deadlineFrom(timeout_ms));
}

Result<void>
writeAll(const Socket &sock, std::string_view data, int timeout_ms)
{
    const auto deadline = deadlineFrom(timeout_ms);
    std::size_t sent = 0;
    while (sent < data.size()) {
        // Timeout semantics mirror readExact: EINTR retries, a
        // socket-level send timeout (SO_SNDTIMEO) surfaces as
        // Timeout instead of spinning, and an absent deadline leaves
        // send ungated so that timeout can fire.
        if (deadline) {
            auto ready = waitFor(sock.fd(), POLLOUT, deadline);
            if (!ready)
                return ready.error();
        }
        const ssize_t rc =
            ::send(sock.fd(), data.data() + sent, data.size() - sent,
                   MSG_NOSIGNAL);
        if (rc > 0) {
            sent += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc < 0 && errno == EINTR)
            continue;
        if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return RampError{ErrorCode::Timeout,
                             cat("socket send timeout (", sent,
                                 " of ", data.size(), " bytes)")};
        return errnoError("send");
    }
    return {};
}

Result<std::optional<std::string>>
readFrame(const Socket &sock, std::size_t max_payload, int timeout_ms)
{
    // One deadline covers the prefix *and* the payload. Giving the
    // payload read a fresh timeout of its own would let a peer that
    // dies after sending a partial frame (or trickles one byte per
    // deadline) hold the reader for up to twice the configured
    // bound -- the hang-shaped edge the serve clients hit.
    const auto deadline = deadlineFrom(timeout_ms);
    auto prefix = readExactUntil(sock, 4, deadline);
    if (!prefix)
        return prefix.error();
    if (!prefix.value().has_value())
        return std::optional<std::string>(std::nullopt);

    const auto &p = *prefix.value();
    const std::uint32_t len =
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(p[0]))
         << 24) |
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(p[1]))
         << 16) |
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(p[2]))
         << 8) |
        static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
    if (len > max_payload)
        return RampError{
            ErrorCode::InvalidInput,
            cat("frame of ", len, " bytes exceeds the ", max_payload,
                "-byte limit (or the stream is desynchronized)")};

    auto payload = readExactUntil(sock, len, deadline);
    if (!payload)
        return payload.error();
    if (!payload.value().has_value())
        return RampError{ErrorCode::IoFailure,
                         "peer closed between prefix and payload"};
    return payload;
}

Result<void>
writeFrame(const Socket &sock, std::string_view payload,
           std::size_t max_payload, int timeout_ms)
{
    if (payload.size() > max_payload)
        return RampError{ErrorCode::InvalidInput,
                         cat("refusing to send a ", payload.size(),
                             "-byte frame (limit ", max_payload,
                             ")")};
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    std::string buf;
    buf.reserve(4 + payload.size());
    buf.push_back(static_cast<char>((len >> 24) & 0xff));
    buf.push_back(static_cast<char>((len >> 16) & 0xff));
    buf.push_back(static_cast<char>((len >> 8) & 0xff));
    buf.push_back(static_cast<char>(len & 0xff));
    buf.append(payload);
    return writeAll(sock, buf, timeout_ms);
}

} // namespace util
} // namespace ramp
