/**
 * @file
 * A small work-queue thread pool for embarrassingly-parallel index
 * ranges (oracle exploration points, per-app sweeps).
 *
 * The design is deliberately minimal: one blocking primitive,
 * parallelFor(count, fn), which runs fn(0) .. fn(count-1) across the
 * pool with the *calling thread participating* as one worker. A pool
 * of n threads therefore spawns n-1 OS threads and delivers n-way
 * concurrency; ThreadPool(1) spawns nothing and degenerates to a
 * plain serial loop, which keeps `--threads 1` an honest baseline.
 *
 * Work items are claimed from a shared atomic index, so scheduling
 * order is nondeterministic -- callers must write results by index
 * (never push_back) and keep fn free of order-dependent state.
 *
 * Failure policy: an item that throws RampException is a *recoverable
 * per-item failure* -- the batch keeps draining, and the failed
 * indices come back in the BatchReport (sorted, so reports are
 * deterministic) for the caller to drop or retry. Any other exception
 * still indicates a bug or an unrecoverable condition: the first one
 * is rethrown on the calling thread after the batch drains.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace ramp {
namespace util {

/** Per-batch outcome of a parallelFor: which items failed, and how.
 *  [[nodiscard]] so the compiler backs up ramp-lint: dropping a
 *  report silently drops the per-item failures inside it. */
struct [[nodiscard]] BatchReport
{
    /** Items submitted (fn invocations attempted). */
    std::size_t items = 0;
    /** (index, error) per item that threw RampException, sorted by
     *  index so the report is deterministic at any thread count. */
    std::vector<std::pair<std::size_t, RampError>> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Threads to use when the caller expressed no preference: the
 * RAMP_THREADS environment variable if set to a positive integer,
 * otherwise std::thread::hardware_concurrency() (minimum 1).
 */
unsigned defaultThreadCount();

/** Fixed-size pool of worker threads executing indexed batches. */
class ThreadPool
{
  public:
    /**
     * @param threads Total concurrency including the calling thread;
     *        0 means defaultThreadCount().
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; outstanding batches must have drained. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (workers + the participating caller). */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, count) across the pool and block
     * until all calls return. The caller participates, so this is
     * safe (and serial) on a 1-thread pool. Reentrant submissions
     * are safe but not parallel: a call made from inside a batch
     * item of the *same* pool (a worker, or the caller while it
     * drains) runs its items inline on the submitting thread, so
     * nested per-core work can call parallelFor without deadlocking
     * against the outer batch.
     *
     * Items that throw RampException are reported in the returned
     * BatchReport instead of killing the batch; any other exception
     * is rethrown (first wins) after the batch drains.
     */
    [[nodiscard]] BatchReport parallelFor(std::size_t count,
                            const std::function<void(std::size_t)> &fn);

  private:
    /**
     * One parallelFor invocation. The claim counter, completion count,
     * and the function itself live here, reference-counted: a worker
     * that wakes late (or stalls between copying the batch pointer and
     * its first claim) can only ever touch *this* batch's state. Its
     * claims hit an exhausted counter and execute nothing -- it can
     * never consume an index of a successor batch, nor run a function
     * whose captures have been destroyed.
     */
    struct Batch
    {
        std::function<void(std::size_t)> fn;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0}; ///< Next unclaimed index.
        std::size_t completed = 0; ///< Executed; guarded by mutex_.
        std::exception_ptr error;  ///< First thrown; guarded by mutex_.
        /** RampException items, unsorted; guarded by mutex_. */
        std::vector<std::pair<std::size_t, RampError>> failures;
    };

    void workerLoop();
    /** Claim and run indices of @p batch; returns how many this
     *  thread executed, recording the first non-Ramp exception and
     *  collecting RampException failures per item. Marks the
     *  calling thread as executing for this pool (currentPool())
     *  while inside fn, so reentrant parallelFor calls detect
     *  themselves and run inline. */
    std::size_t
    drainBatch(Batch &batch, std::exception_ptr &error,
               std::vector<std::pair<std::size_t, RampError>> &failures);

    /** The pool whose batch item the calling thread is currently
     *  executing, nullptr outside any item. */
    static ThreadPool *&currentPool();

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_cv_; ///< New batch or shutdown.
    std::condition_variable done_cv_; ///< Batch fully executed.

    /** Current batch; null when retired. */
    std::shared_ptr<Batch> batch_; // ramp-lint: guarded_by(mutex_)
    bool stop_ = false;
};

} // namespace util
} // namespace ramp

