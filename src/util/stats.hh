/**
 * @file
 * Lightweight statistics primitives used throughout the simulator and
 * the RAMP engine: streaming moments, min/max tracking, time-weighted
 * averages, and fixed-bin histograms.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ramp {
namespace util {

/**
 * Streaming mean/variance/min/max using Welford's algorithm.
 * Numerically stable for long runs.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Remove all samples. */
    void reset();

    /** Number of samples seen. */
    std::uint64_t count() const { return n_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 1.0 / 0.0;
    double max_ = -1.0 / 0.0;
};

/**
 * Time-weighted average: samples carry a duration weight, so intervals
 * of unequal length average correctly. Used for FIT-over-time and
 * temperature-over-time accumulation (paper Section 3.6).
 */
class TimeWeightedStat
{
  public:
    /** Add a value held for the given (positive) duration. */
    void add(double value, double duration);

    /** Remove all samples. */
    void reset();

    /** Total accumulated duration. */
    double totalTime() const { return total_time_; }

    /** Duration-weighted mean; 0 when no time accumulated. */
    double mean() const;

    /** Smallest sampled value; +inf when empty. */
    double min() const { return min_; }

    /** Largest sampled value; -inf when empty. */
    double max() const { return max_; }

  private:
    double weighted_sum_ = 0.0;
    double total_time_ = 0.0;
    double min_ = 1.0 / 0.0;
    double max_ = -1.0 / 0.0;
};

/**
 * Fixed-width-bin histogram over [lo, hi). Samples outside the range
 * land in saturating underflow/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the tracked range.
     * @param hi Exclusive upper bound; must be > lo.
     * @param bins Number of interior bins; must be >= 1.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. */
    void add(double x);

    /** Count in interior bin i. */
    std::uint64_t binCount(std::size_t i) const;

    /** Inclusive lower edge of interior bin i. */
    double binLo(std::size_t i) const;

    /** Exclusive upper edge of interior bin i. */
    double binHi(std::size_t i) const;

    /** Number of interior bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Samples below the range. */
    std::uint64_t underflow() const { return underflow_; }

    /** Samples at or above the upper bound. */
    std::uint64_t overflow() const { return overflow_; }

    /** Total samples including out-of-range ones. */
    std::uint64_t total() const { return total_; }

    /**
     * Value below which the given fraction of in-range samples fall
     * (linear interpolation within the bin). q in [0, 1].
     */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Nearest-rank percentile of an ascending-sorted sample: the value at
 * index ceil(p * n) - 1, clamped to the sample. This is the inverse
 * of the empirical CDF -- p50 of {a, b} is a, not b; indexing
 * p * n directly is biased one rank high at every boundary. p in
 * [0, 1]; panics on an empty sample (no percentile exists).
 */
double percentile(const std::vector<double> &sorted_ascending,
                  double p);

} // namespace util
} // namespace ramp

