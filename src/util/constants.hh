/**
 * @file
 * Physical constants and unit helpers shared by the power, thermal, and
 * reliability models. Quantities are plain doubles in SI-flavoured
 * units; the convention for each is documented at the point of use:
 * temperatures in kelvin, voltages in volts, frequencies in hertz,
 * powers in watts, areas in square millimetres, time in seconds.
 */

#pragma once

namespace ramp {
namespace util {

/** Boltzmann constant in eV/K (reliability models use eV activation). */
constexpr double k_boltzmann_ev = 8.617333262e-5;

/** Seconds per hour. */
constexpr double seconds_per_hour = 3600.0;

/** Hours per year (365.25 days). */
constexpr double hours_per_year = 24.0 * 365.25;

/** Device-hours per FIT unit: 1 FIT = 1 failure per 1e9 device-hours. */
constexpr double fit_hours = 1e9;

/** Convert degrees Celsius to kelvin. */
constexpr double
celsiusToKelvin(double c)
{
    return c + 273.15;
}

/** Convert kelvin to degrees Celsius. */
constexpr double
kelvinToCelsius(double k)
{
    return k - 273.15;
}

/**
 * Convert an MTTF in years to a failure rate in FIT, assuming the
 * exponential-lifetime (constant failure rate) model used throughout
 * the paper: FIT = 1e9 / MTTF_hours.
 */
constexpr double
mttfYearsToFit(double years)
{
    return fit_hours / (years * hours_per_year);
}

/** Inverse of mttfYearsToFit. */
constexpr double
fitToMttfYears(double fit)
{
    return fit_hours / (fit * hours_per_year);
}

} // namespace util
} // namespace ramp

