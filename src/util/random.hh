/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the workload generator and simulator runs
 * off this generator so that every experiment is exactly reproducible
 * from a seed. The core is xoshiro256**, which is fast, small, and has
 * no observable statistical defects at the scales used here.
 */

#pragma once

#include <cstdint>

namespace ramp {
namespace util {

/**
 * xoshiro256** PRNG with convenience distributions.
 *
 * A seed of any value (including 0) is valid; seeding runs the state
 * through splitmix64 so correlated seeds do not produce correlated
 * streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed, resetting the stream. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Geometric distribution on {1, 2, ...}: number of trials up to and
     * including the first success, success probability p in (0, 1].
     */
    std::uint64_t geometric(double p);

    /** Exponential variate with the given mean (> 0). */
    double exponential(double mean);

    /**
     * Fork an independent child stream. The child is seeded from this
     * stream's output, so forked generators are decorrelated but still
     * fully determined by the parent seed.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace util
} // namespace ramp

