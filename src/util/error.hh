/**
 * @file
 * Structured recoverable errors.
 *
 * fatal() and panic() (util/logging.hh) remain correct for
 * unrecoverable conditions: user configuration errors that make the
 * whole run meaningless, and internal invariant violations that imply
 * a bug in this library. Everything else -- a singular thermal solve
 * for one operating point, a corrupt cache record, an evaluation that
 * failed to converge, lock contention on shared files -- is a
 * *per-item* failure inside a larger computation, and killing the
 * process over it turns one bad record into a lost 162-point
 * exploration. Those paths return (or throw, across ThreadPool
 * batches) a RampError instead, so callers drop and report the failed
 * item and keep going.
 */

#pragma once

#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace ramp {
namespace util {

/** What went wrong, at the granularity callers dispatch on. */
enum class ErrorCode {
    /** Linear system numerically singular (thermal solve). */
    SingularSystem,
    /** NaN/Inf where a finite value is required. */
    NonFiniteValue,
    /** Iterative method hit its iteration limit. */
    NonConvergence,
    /** A parameter or input failed validation. */
    InvalidInput,
    /** A persisted record failed to parse. */
    CorruptRecord,
    /** File I/O failed after bounded retries. */
    IoFailure,
    /** An advisory lock was held by another process. */
    LockContention,
    /** A deadline elapsed before an I/O operation completed. */
    Timeout,
    /** A bounded admission queue rejected the work (serving layer). */
    Overloaded,
    /** The peer is draining and no longer accepts work. */
    Unavailable,
};

/** Stable lowercase name for logs and tests. */
const char *errorCodeName(ErrorCode code);

/** One recoverable failure: a code plus a human-readable message. */
struct RampError
{
    ErrorCode code = ErrorCode::InvalidInput;
    std::string message;

    /** "code: message" rendering for logs. */
    std::string str() const;
};

/**
 * Exception wrapper for crossing stack frames that cannot return a
 * Result (ThreadPool batch functions). ThreadPool::parallelFor
 * catches it per item and reports the failures in its BatchReport
 * instead of rethrowing, so one bad item never kills a batch.
 */
class RampException : public std::exception
{
  public:
    explicit RampException(RampError error)
        : error_(std::move(error)), what_(error_.str())
    {
    }

    const RampError &error() const { return error_; }

    const char *what() const noexcept override
    {
        return what_.c_str();
    }

  private:
    RampError error_;
    std::string what_;
};

/** [[noreturn]] helper: report a misused Result and abort. */
[[noreturn]] void resultMisuse(const char *what);

/**
 * Value-or-error return type for recoverable library failures.
 * Implicitly constructible from either side; accessing the wrong
 * side is a programming bug and panics. [[nodiscard]] so the
 * compiler backs up ramp-lint's result-discipline pass: a dropped
 * Result is a dropped error.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : v_(std::move(value)) {}
    Result(RampError error) : v_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        if (!ok())
            resultMisuse("Result::value() on an error");
        return std::get<T>(v_);
    }

    const T &
    value() const
    {
        if (!ok())
            resultMisuse("Result::value() on an error");
        return std::get<T>(v_);
    }

    const RampError &
    error() const
    {
        if (ok())
            resultMisuse("Result::error() on a value");
        return std::get<RampError>(v_);
    }

  private:
    std::variant<T, RampError> v_;
};

/** Result<void>: success carries nothing. */
template <>
class [[nodiscard]] Result<void>
{
  public:
    Result() = default;
    Result(RampError error) : err_(std::move(error)) {}

    bool ok() const { return !err_.has_value(); }
    explicit operator bool() const { return ok(); }

    const RampError &
    error() const
    {
        if (ok())
            resultMisuse("Result::error() on a value");
        return *err_;
    }

  private:
    std::optional<RampError> err_;
};

} // namespace util
} // namespace ramp
