#include "util/logging.hh"

#include <cstdio>

namespace ramp {
namespace util {

namespace {

LogLevel global_level = LogLevel::Warn;

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

void
inform(const std::string &msg)
{
    if (global_level >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (global_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
debug(const std::string &msg)
{
    if (global_level >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace util
} // namespace ramp
