#include "util/thread_pool.hh"

// ramp-lint: guarded_by(mutex_): batch_

#include <algorithm>
#include <cstdlib>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace ramp {
namespace util {

namespace {

/** Batch-granularity pool metrics; the per-item claim loop in
 *  drainBatch stays untouched. */
struct PoolMetrics
{
    telemetry::Counter batches = telemetry::counter("pool.batches");
    telemetry::Counter items = telemetry::counter("pool.items");
    telemetry::Counter caller_items =
        telemetry::counter("pool.caller_items");
    telemetry::Counter worker_items =
        telemetry::counter("pool.worker_items");
    telemetry::Gauge threads = telemetry::gauge("pool.threads");
    telemetry::Gauge queue_depth =
        telemetry::gauge("pool.queue_depth");
    /** Wall time of one parallelFor batch. */
    telemetry::Histogram batch_s =
        telemetry::histogram("pool.batch_s", 0.0, 10.0, 40);
    /** Fraction of a batch's items executed by pool workers (as
     *  opposed to the submitting caller); 0 on the serial path. */
    telemetry::Histogram worker_share =
        telemetry::histogram("pool.worker_share", 0.0, 1.0, 20);
    /** Items that threw RampException and were dropped (reported in
     *  the BatchReport) instead of killing their batch. */
    telemetry::Counter failed_items =
        telemetry::counter("pool.failed_items");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics m;
    return m;
}

} // namespace

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("RAMP_THREADS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<unsigned>(n);
        warn(cat("RAMP_THREADS='", env,
                 "' is not a positive integer; falling back to "
                 "hardware concurrency"));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers_.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

ThreadPool *&
ThreadPool::currentPool()
{
    static thread_local ThreadPool *current = nullptr;
    return current;
}

namespace {

/** Marks the calling thread as executing items of one pool for the
 *  current scope, restoring the previous marker on exit. */
struct ExecutingScope
{
    explicit ExecutingScope(ThreadPool **slot, ThreadPool *pool)
        : slot_(slot), previous_(*slot)
    {
        *slot_ = pool;
    }
    ~ExecutingScope() { *slot_ = previous_; }
    ExecutingScope(const ExecutingScope &) = delete;
    ExecutingScope &operator=(const ExecutingScope &) = delete;

  private:
    ThreadPool **slot_;
    ThreadPool *previous_;
};

} // namespace

std::size_t
ThreadPool::drainBatch(
    Batch &batch, std::exception_ptr &error,
    std::vector<std::pair<std::size_t, RampError>> &failures)
{
    const ExecutingScope scope(&currentPool(), this);
    std::size_t executed = 0;
    for (;;) {
        const std::size_t i =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.count)
            return executed;
        try {
            batch.fn(i);
        } catch (const RampException &e) {
            failures.emplace_back(i, e.error());
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
        ++executed;
    }
}

void
ThreadPool::workerLoop()
{
    // Holding the shared_ptr across the whole drain keeps the batch
    // (claim counter included) alive even if parallelFor returns and
    // a successor batch starts while this worker is still making its
    // first claim: that claim lands on the old, exhausted counter and
    // executes nothing.
    std::shared_ptr<Batch> last;
    std::unique_lock lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [&] { return stop_ || batch_ != last; });
        if (stop_)
            return;
        last = batch_;
        if (!last)
            continue; // batch drained and retired before we woke
        lock.unlock();

        std::exception_ptr error;
        std::vector<std::pair<std::size_t, RampError>> failures;
        const std::size_t executed =
            drainBatch(*last, error, failures);

        lock.lock();
        last->completed += executed;
        if (error && !last->error)
            last->error = error;
        for (auto &f : failures)
            last->failures.push_back(std::move(f));
        if (last->completed >= last->count)
            done_cv_.notify_all();
    }
}

BatchReport
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    BatchReport report;
    report.items = count;
    if (count == 0)
        return report;

    auto &metrics = poolMetrics();
    metrics.batches.add();
    metrics.items.add(count);
    metrics.threads.set(static_cast<double>(workers_.size() + 1));
    telemetry::ScopedTimer timer(metrics.batch_s, "parallelFor",
                                 "pool");
    timer.arg("count", static_cast<double>(count));

    // Inline serial path: no workers, a single item, or a reentrant
    // submission from inside one of this very pool's batch items (a
    // worker thread, or the caller while it drains). Running the
    // nested batch on the submitting thread keeps reentrant
    // parallelFor deadlock-free without a second scheduling layer.
    if (workers_.empty() || count == 1 || currentPool() == this) {
        const ExecutingScope scope(&currentPool(), this);
        std::exception_ptr error;
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (const RampException &e) {
                report.failures.emplace_back(i, e.error());
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        metrics.caller_items.add(count);
        metrics.worker_share.add(0.0);
        metrics.failed_items.add(report.failures.size());
        if (error)
            std::rethrow_exception(error);
        return report;
    }

    auto batch = std::make_shared<Batch>();
    batch->fn = fn;
    batch->count = count;

    std::unique_lock lock(mutex_);
    batch_ = batch;
    lock.unlock();
    work_cv_.notify_all();
    metrics.queue_depth.set(static_cast<double>(count));

    std::exception_ptr error;
    std::vector<std::pair<std::size_t, RampError>> failures;
    const std::size_t executed = drainBatch(*batch, error, failures);

    lock.lock();
    batch->completed += executed;
    if (error && !batch->error)
        batch->error = error;
    for (auto &f : failures)
        batch->failures.push_back(std::move(f));
    done_cv_.wait(lock,
                  [&] { return batch->completed >= batch->count; });
    // Retire the batch so late-waking workers see no work. (Workers
    // still holding a reference add zero to its counters, harmless.)
    if (batch_ == batch)
        batch_ = nullptr;
    const std::exception_ptr first = batch->error;
    report.failures = std::move(batch->failures);
    lock.unlock();

    metrics.queue_depth.set(0.0);
    metrics.caller_items.add(executed);
    metrics.worker_items.add(count - executed);
    metrics.worker_share.add(static_cast<double>(count - executed) /
                             static_cast<double>(count));

    std::sort(report.failures.begin(), report.failures.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    metrics.failed_items.add(report.failures.size());

    if (first)
        std::rethrow_exception(first);
    return report;
}

} // namespace util
} // namespace ramp
