#include "util/thread_pool.hh"

#include <cstdlib>

namespace ramp {
namespace util {

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("RAMP_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers_.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::size_t
ThreadPool::drainBatch(const std::function<void(std::size_t)> &fn,
                       std::size_t count, std::exception_ptr &error)
{
    std::size_t executed = 0;
    for (;;) {
        const std::size_t i =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            return executed;
        try {
            fn(i);
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
        ++executed;
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock lock(mutex_);
    for (;;) {
        work_cv_.wait(
            lock, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        const auto *fn = fn_;
        const std::size_t count = count_;
        if (!fn)
            continue; // batch already drained and retired
        lock.unlock();

        std::exception_ptr error;
        const std::size_t executed = drainBatch(*fn, count, error);

        lock.lock();
        // A worker that executed nothing may be reporting late, after
        // the batch (or even a successor) retired; adding zero and
        // holding no exception keeps that harmless.
        completed_ += executed;
        if (error && !error_)
            error_ = error;
        if (completed_ >= count_)
            done_cv_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::unique_lock lock(mutex_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    error_ = nullptr;
    ++generation_;
    lock.unlock();
    work_cv_.notify_all();

    std::exception_ptr error;
    const std::size_t executed = drainBatch(fn, count, error);

    lock.lock();
    completed_ += executed;
    if (error && !error_)
        error_ = error;
    done_cv_.wait(lock, [&] { return completed_ >= count_; });
    // Retire the batch so late-waking workers see no work.
    fn_ = nullptr;
    count_ = 0;
    const std::exception_ptr first = error_;
    error_ = nullptr;
    lock.unlock();

    if (first)
        std::rethrow_exception(first);
}

} // namespace util
} // namespace ramp
