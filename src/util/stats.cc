#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ramp {
namespace util {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
TimeWeightedStat::add(double value, double duration)
{
    if (duration <= 0.0)
        panic(cat("TimeWeightedStat::add needs duration > 0, got ",
                  duration));
    weighted_sum_ += value * duration;
    total_time_ += duration;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
TimeWeightedStat::reset()
{
    *this = TimeWeightedStat();
}

double
TimeWeightedStat::mean() const
{
    return total_time_ > 0.0 ? weighted_sum_ / total_time_ : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    if (!(hi > lo))
        fatal(cat("Histogram needs hi > lo, got [", lo, ", ", hi, ")"));
    if (bins == 0)
        fatal("Histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto i = static_cast<std::size_t>((x - lo_) / width_);
        if (i >= counts_.size()) // guard FP edge at hi_
            i = counts_.size() - 1;
        ++counts_[i];
    }
}

std::uint64_t
Histogram::binCount(std::size_t i) const
{
    if (i >= counts_.size())
        panic(cat("Histogram bin ", i, " out of range"));
    return counts_[i];
}

double
Histogram::binLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::binHi(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i + 1);
}

double
Histogram::quantile(double q) const
{
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t in_range = total_ - underflow_ - overflow_;
    if (in_range == 0)
        return lo_;
    const double target = q * static_cast<double>(in_range);
    double seen = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto c = static_cast<double>(counts_[i]);
        if (seen + c >= target && c > 0.0) {
            const double frac = (target - seen) / c;
            return binLo(i) + frac * width_;
        }
        seen += c;
    }
    return hi_;
}

double
percentile(const std::vector<double> &sorted_ascending, double p)
{
    if (sorted_ascending.empty())
        panic("percentile of an empty sample");
    p = std::clamp(p, 0.0, 1.0);
    const double n = static_cast<double>(sorted_ascending.size());
    const double rank = std::ceil(p * n);
    std::size_t i = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    if (i >= sorted_ascending.size())
        i = sorted_ascending.size() - 1;
    return sorted_ascending[i];
}

} // namespace util
} // namespace ramp
