#include "util/error.hh"

#include "util/logging.hh"

namespace ramp {
namespace util {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::SingularSystem:
        return "singular-system";
      case ErrorCode::NonFiniteValue:
        return "non-finite-value";
      case ErrorCode::NonConvergence:
        return "non-convergence";
      case ErrorCode::InvalidInput:
        return "invalid-input";
      case ErrorCode::CorruptRecord:
        return "corrupt-record";
      case ErrorCode::IoFailure:
        return "io-failure";
      case ErrorCode::LockContention:
        return "lock-contention";
      case ErrorCode::Timeout:
        return "timeout";
      case ErrorCode::Overloaded:
        return "overloaded";
      case ErrorCode::Unavailable:
        return "unavailable";
    }
    return "unknown";
}

std::string
RampError::str() const
{
    return cat(errorCodeName(code), ": ", message);
}

void
resultMisuse(const char *what)
{
    panic(what);
}

} // namespace util
} // namespace ramp
