/**
 * @file
 * Low-overhead process-wide instrumentation: named counters, gauges,
 * and histograms, scoped RAII timers, and trace spans emitted as
 * Chrome trace-event JSON (loadable in chrome://tracing / Perfetto).
 *
 * Aggregation is per-thread with merge-at-snapshot, so instrumenting
 * a hot path costs one thread-local increment, never a contended
 * atomic or a lock:
 *
 *  - Counters live in per-thread slots. Only the owning thread writes
 *    a slot, so the increment is a plain load/add/store (the slots are
 *    std::atomic only so a concurrent snapshot read is well-defined;
 *    an owner-only non-RMW relaxed update compiles to the same
 *    mov/add/mov a plain increment does).
 *  - Histograms reuse util/stats.hh (Histogram + RunningStat) per
 *    thread, guarded by the owning thread's uncontended state mutex;
 *    they are meant for per-call granularity (evaluations, batches),
 *    not per-cycle events.
 *  - Gauges are single process-wide cells (set rarely: pool size,
 *    queue depth, controller level).
 *
 * A snapshot merges every live thread's state with the totals of
 * already-exited threads; a snapshot taken after a parallel region
 * has joined (e.g. after ThreadPool::parallelFor returns) observes
 * exact counts.
 *
 * Tracing is off by default; spans and instant events are dropped at
 * a single relaxed atomic-bool check when disabled.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stats.hh"

namespace ramp {
namespace telemetry {

class Registry;

namespace detail {

/** Per-thread histogram storage: util/stats bins + moments. */
struct LocalHist
{
    util::Histogram hist;
    util::RunningStat stat;

    LocalHist(double lo, double hi, std::size_t bins)
        : hist(lo, hi, bins)
    {
    }

    void
    add(double x)
    {
        hist.add(x);
        stat.add(x);
    }
};

/**
 * One thread's metric storage. Only the owning thread mutates it;
 * `mu` guards structural growth and histogram contents against a
 * concurrent snapshot. Counter increments take no lock (the deque
 * never relocates elements, and growth happens under `mu`).
 */
struct ThreadState
{
    std::mutex mu;
    std::deque<std::atomic<std::uint64_t>> counters;
    std::deque<std::unique_ptr<LocalHist>> hists;

    void growCounters(std::size_t slot);
    void ensureHist(std::size_t slot, double lo, double hi,
                    std::size_t bins);
};

/** The calling thread's state, registered on first use. */
ThreadState &localState();

} // namespace detail

/** Handle to a named monotonic counter. Cheap to copy. */
class Counter
{
  public:
    /** A default-constructed handle is inert (add() is a no-op). */
    Counter() = default;

    /** Add to this thread's slot (no lock, no atomic RMW). */
    void
    add(std::uint64_t n = 1) const
    {
        if (slot_ == npos)
            return;
        auto &ts = detail::localState();
        if (slot_ >= ts.counters.size())
            ts.growCounters(slot_);
        auto &c = ts.counters[slot_];
        c.store(c.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    static constexpr std::size_t npos = ~std::size_t{0};
    explicit Counter(std::size_t slot) : slot_(slot) {}
    std::size_t slot_ = npos;
};

/** Handle to a named process-wide gauge (last value wins). */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(double v) const
    {
        if (cell_)
            cell_->store(v, std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    explicit Gauge(std::atomic<double> *cell) : cell_(cell) {}
    std::atomic<double> *cell_ = nullptr;
};

/** Handle to a named fixed-bin histogram. Cheap to copy. */
class Histogram
{
  public:
    /** A default-constructed handle is inert (add() is a no-op). */
    Histogram() = default;

    /** Record one sample into this thread's bins. */
    void add(double x) const;

  private:
    friend class Registry;
    static constexpr std::size_t npos = ~std::size_t{0};
    Histogram(std::size_t slot, double lo, double hi,
              std::size_t bins)
        : slot_(slot), lo_(lo), hi_(hi), bins_(bins)
    {
    }

    std::size_t slot_ = npos;
    double lo_ = 0.0;
    double hi_ = 1.0;
    std::size_t bins_ = 1;
};

/** One key/value pair attached to a trace event. */
using SpanArg = std::pair<std::string, double>;

/** The process-wide metric registry and trace collector. */
class Registry
{
  public:
    /** The singleton; never destroyed (safe from atexit handlers and
     *  late-exiting threads). */
    static Registry &instance();

    /**
     * Register (or look up) a metric. Re-registering the same name
     * returns the same handle; a name clash across metric kinds, or a
     * histogram re-registered with a different shape, is a panic.
     */
    Counter counter(std::string_view name);
    Gauge gauge(std::string_view name);
    Histogram histogram(std::string_view name, double lo, double hi,
                        std::size_t bins);

    /** Enable/disable span collection (off by default). */
    void setTracing(bool on);
    bool
    tracing() const
    {
        return tracing_.load(std::memory_order_relaxed);
    }

    /** Record a complete ("X") trace event. Dropped when disabled. */
    void recordSpan(std::string_view name, std::string_view cat,
                    double ts_us, double dur_us,
                    std::vector<SpanArg> args = {});

    /** Record an instant ("i") trace event. Dropped when disabled. */
    void recordInstant(std::string_view name, std::string_view cat,
                       std::vector<SpanArg> args = {});

    /** Microseconds since the registry was created. */
    double nowUs() const;

    /** Merged view of one histogram. */
    struct HistogramSnapshot
    {
        double lo = 0.0;
        double hi = 0.0;
        std::vector<std::uint64_t> counts; ///< Interior bins.
        std::uint64_t underflow = 0;
        std::uint64_t overflow = 0;
        std::uint64_t total = 0;
        double sum = 0.0;
        double min = 0.0; ///< Meaningless when total == 0.
        double max = 0.0;

        double
        mean() const
        {
            return total ? sum / static_cast<double>(total) : 0.0;
        }
    };

    /** Merged view of every metric. */
    struct Snapshot
    {
        std::map<std::string, std::uint64_t> counters;
        std::map<std::string, double> gauges;
        std::map<std::string, HistogramSnapshot> histograms;

        /** Counter value, 0 when absent. */
        std::uint64_t counter(const std::string &name) const;
    };

    /**
     * Merge every live thread's state with the retired totals. Exact
     * whenever the writers have quiesced (e.g. after a parallelFor
     * has joined); otherwise each thread's contribution is whatever
     * it had published when the snapshot locked its state.
     */
    Snapshot snapshot() const;

    /** Snapshot serialized as one JSON object
     *  ({"counters": {...}, "gauges": {...}, "histograms": {...}}). */
    void writeMetricsJson(std::ostream &os) const;

    /** Collected spans as Chrome trace-event JSON. */
    void writeTraceJson(std::ostream &os) const;

    /** Zero every metric and drop collected spans (for tests; callers
     *  must have quiesced their writers). */
    void reset();

  private:
    friend detail::ThreadState &detail::localState();
    friend class Histogram;

    Registry();

    struct MetricInfo
    {
        enum class Kind { Counter, Gauge, Histogram };
        Kind kind;
        std::string name;
        std::size_t slot = 0; ///< Index within the kind's slot space.
        double lo = 0.0;      ///< Histogram shape.
        double hi = 0.0;
        std::size_t bins = 0;
    };

    /** Totals carried over from exited threads; shaped like
     *  HistogramSnapshot minus the metadata. */
    struct HistTotals
    {
        std::vector<std::uint64_t> counts;
        std::uint64_t underflow = 0;
        std::uint64_t overflow = 0;
        std::uint64_t total = 0;
        double sum = 0.0;
        double min = 1.0 / 0.0;
        double max = -1.0 / 0.0;
    };

    struct Span
    {
        std::string name;
        std::string cat;
        std::uint32_t tid = 0;
        double ts_us = 0.0;
        double dur_us = 0.0;
        bool instant = false;
        std::vector<SpanArg> args;
    };

    void registerState(detail::ThreadState *state);
    void retireState(detail::ThreadState *state);
    /** Fold one thread's data into the retired totals; caller holds
     *  mu_ and the state's mu. */
    void mergeLocked(const detail::ThreadState &state);
    const MetricInfo &lookupOrCreate(std::string_view name,
                                     MetricInfo::Kind kind, double lo,
                                     double hi, std::size_t bins);
    void addSpan(Span span);

    mutable std::mutex mu_; ///< Guards everything below but spans.
    std::map<std::string, std::size_t, std::less<>> by_name_;
    std::vector<MetricInfo> metrics_;
    std::size_t counter_slots_ = 0;
    std::size_t hist_slots_ = 0;
    std::deque<std::atomic<double>> gauges_;
    std::vector<std::uint64_t> counter_totals_;
    std::vector<HistTotals> hist_totals_;
    // ramp-lint: guarded_by(mu_)
    std::vector<detail::ThreadState *> live_;

    std::atomic<bool> tracing_{false};
    mutable std::mutex trace_mu_; ///< Guards spans_.
    // ramp-lint: guarded_by(trace_mu_)
    std::vector<Span> spans_;
    std::size_t spans_dropped_ = 0; ///< Past the cap; guarded above.
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * RAII timer: on destruction records the elapsed seconds into a
 * histogram and, when tracing is enabled, emits a complete span.
 */
class ScopedTimer
{
  public:
    /**
     * @param hist Histogram receiving the duration in seconds.
     * @param span_name Trace span name; nullptr = histogram only.
     * @param category Trace category (groups rows in the viewer).
     */
    explicit ScopedTimer(Histogram hist,
                         const char *span_name = nullptr,
                         const char *category = "");

    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Attach a numeric argument to the emitted span. */
    void arg(std::string name, double value);

  private:
    Histogram hist_;
    const char *name_;
    const char *cat_;
    std::vector<SpanArg> args_;
    std::chrono::steady_clock::time_point start_;
};

/** Shorthand: Registry::instance().counter(name). */
Counter counter(std::string_view name);

/** Shorthand: Registry::instance().gauge(name). */
Gauge gauge(std::string_view name);

/** Shorthand: Registry::instance().histogram(...). */
Histogram histogram(std::string_view name, double lo, double hi,
                    std::size_t bins);

/** Shorthand for an instant trace event. */
void instant(std::string_view name, std::string_view cat,
             std::vector<SpanArg> args = {});

/**
 * Arrange for the registry to be serialized at process exit: a
 * metrics snapshot to @p metrics_path and/or the span timeline to
 * @p trace_path (empty = skip). Passing a non-empty trace path
 * enables tracing. Runs via atexit, so it also fires on
 * util::fatal()'s exit(1). Later calls override earlier paths.
 */
void writeFilesAtExit(std::string metrics_path,
                      std::string trace_path);

/**
 * Strip `--metrics <file>` / `--trace <file>` (and the `=` forms)
 * from an argv, arranging the corresponding outputs at exit; other
 * arguments are left in place for the caller's own parsing.
 * @return the new argc. argv[new_argc] is set to nullptr.
 */
int consumeOutputFlags(int argc, char **argv);

} // namespace telemetry
} // namespace ramp

