#include "util/linalg.hh"

#include <cmath>
#include <utility>

#include "util/logging.hh"

namespace ramp {
namespace util {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    return data_[r * cols_ + c];
}

std::vector<double>
Matrix::mul(const std::vector<double> &x) const
{
    if (x.size() != cols_)
        panic(cat("Matrix::mul size mismatch: ", cols_, " vs ", x.size()));
    std::vector<double> y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            acc += at(r, c) * x[c];
        y[r] = acc;
    }
    return y;
}

Result<std::vector<double>>
trySolveLinear(Matrix a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        panic("solveLinear needs a square system");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot: find the largest magnitude entry in the column.
        std::size_t pivot = col;
        double best = std::fabs(a.at(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::fabs(a.at(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-300)
            return RampError{ErrorCode::SingularSystem,
                             cat("singular linear system (pivot ",
                                 best, " in column ", col, " of ", n,
                                 ")")};
        if (pivot != col) {
            for (std::size_t c = col; c < n; ++c)
                std::swap(a.at(col, c), a.at(pivot, c));
            std::swap(b[col], b[pivot]);
        }
        // Eliminate below.
        const double d = a.at(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a.at(r, col) / d;
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a.at(r, c) -= factor * a.at(col, c);
            b[r] -= factor * b[col];
        }
    }

    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            acc -= a.at(i, c) * x[c];
        x[i] = acc / a.at(i, i);
    }
    return x;
}

std::vector<double>
solveLinear(Matrix a, std::vector<double> b)
{
    auto result = trySolveLinear(std::move(a), std::move(b));
    if (!result)
        fatal(cat("solveLinear: ", result.error().str()));
    return std::move(result.value());
}

} // namespace util
} // namespace ramp
