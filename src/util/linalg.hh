/**
 * @file
 * Small dense linear algebra for the thermal RC network.
 *
 * Thermal networks here have O(10) nodes, so a dense row-major matrix
 * with partial-pivot Gaussian elimination is both simpler and faster
 * than any sparse machinery.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hh"

namespace ramp {
namespace util {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Create a rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Mutable element access (bounds-checked in debug builds). */
    double &at(std::size_t r, std::size_t c);

    /** Const element access. */
    double at(std::size_t r, std::size_t c) const;

    /** Matrix-vector product; x.size() must equal cols(). */
    std::vector<double> mul(const std::vector<double> &x) const;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

/**
 * Solve A x = b with partial-pivot Gaussian elimination.
 * A must be square with A.rows() == b.size() (violating that is a
 * caller bug and panics). A numerically singular system is a
 * recoverable per-item failure and comes back as
 * ErrorCode::SingularSystem.
 */
[[nodiscard]] Result<std::vector<double>> trySolveLinear(Matrix a,
                                           std::vector<double> b);

/**
 * trySolveLinear that treats singularity as unrecoverable: calls
 * fatal(). For callers whose system is constructed from validated
 * user configuration and can only be singular if that configuration
 * is meaningless.
 */
std::vector<double> solveLinear(Matrix a, std::vector<double> b);

} // namespace util
} // namespace ramp

