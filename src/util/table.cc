#include "util/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace ramp {
namespace util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("Table needs at least one column");
}

void
Table::setTitle(std::string title)
{
    title_ = std::move(title);
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal(cat("Table row has ", cells.size(), " cells, expected ",
                  headers_.size()));
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    if (!title_.empty())
        os << title_ << '\n';

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << row[c];
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace util
} // namespace ramp
