#include "util/telemetry.hh"

// Intra-file lock checking for the registry's shared state
// (declared in telemetry.hh, used here):
// ramp-lint: guarded_by(mu_): live_
// ramp-lint: guarded_by(trace_mu_): spans_

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "util/json.hh"
#include "util/logging.hh"

namespace ramp {
namespace telemetry {

namespace {

/** Span cap: ~a few hundred bytes each; beyond this the run is
 *  producing a trace nobody can load anyway. */
constexpr std::size_t max_spans = 1'000'000;

std::uint32_t
threadTraceId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

} // namespace

namespace detail {

void
ThreadState::growCounters(std::size_t slot)
{
    std::lock_guard lock(mu);
    while (counters.size() <= slot)
        counters.emplace_back();
}

void
ThreadState::ensureHist(std::size_t slot, double lo, double hi,
                        std::size_t bins)
{
    std::lock_guard lock(mu);
    while (hists.size() <= slot)
        hists.emplace_back();
    if (!hists[slot])
        hists[slot] = std::make_unique<LocalHist>(lo, hi, bins);
}

ThreadState &
localState()
{
    // The holder registers the state on thread start and retires it
    // (merging into the registry totals) on thread exit. The state
    // itself is owned by the registry so a snapshot can never see a
    // dangling pointer.
    struct Holder
    {
        ThreadState *state;

        // ramp-lint: allow(raw-new): state outlives the thread.
        Holder() : state(new ThreadState())
        {
            Registry::instance().registerState(state);
        }

        ~Holder() { Registry::instance().retireState(state); }
    };
    thread_local Holder holder;
    return *holder.state;
}

} // namespace detail

void
Histogram::add(double x) const
{
    if (slot_ == npos)
        return;
    auto &ts = detail::localState();
    if (slot_ >= ts.hists.size() || !ts.hists[slot_])
        ts.ensureHist(slot_, lo_, hi_, bins_);
    std::lock_guard lock(ts.mu);
    ts.hists[slot_]->add(x);
}

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}

Registry &
Registry::instance()
{
    // Leaked on purpose: thread_local destructors and atexit writers
    // may run after static destruction would have torn it down.
    // ramp-lint: allow(raw-new): leaked on purpose, see above.
    static Registry *r = new Registry();
    return *r;
}

const Registry::MetricInfo &
Registry::lookupOrCreate(std::string_view name, MetricInfo::Kind kind,
                         double lo, double hi, std::size_t bins)
{
    auto it = by_name_.find(name);
    if (it != by_name_.end()) {
        const MetricInfo &info = metrics_[it->second];
        if (info.kind != kind)
            util::panic(util::cat("telemetry metric '", name,
                                  "' re-registered as a different "
                                  "kind"));
        if (kind == MetricInfo::Kind::Histogram &&
            (info.lo != lo || info.hi != hi || info.bins != bins))
            util::panic(util::cat("telemetry histogram '", name,
                                  "' re-registered with a different "
                                  "shape"));
        return info;
    }

    MetricInfo info;
    info.kind = kind;
    info.name = std::string(name);
    info.lo = lo;
    info.hi = hi;
    info.bins = bins;
    switch (kind) {
      case MetricInfo::Kind::Counter:
        info.slot = counter_slots_++;
        counter_totals_.push_back(0);
        break;
      case MetricInfo::Kind::Gauge:
        info.slot = gauges_.size();
        gauges_.emplace_back();
        break;
      case MetricInfo::Kind::Histogram:
        info.slot = hist_slots_++;
        hist_totals_.emplace_back();
        hist_totals_.back().counts.resize(bins, 0);
        break;
    }
    metrics_.push_back(info);
    by_name_.emplace(info.name, metrics_.size() - 1);
    return metrics_.back();
}

Counter
Registry::counter(std::string_view name)
{
    std::lock_guard lock(mu_);
    return Counter(
        lookupOrCreate(name, MetricInfo::Kind::Counter, 0, 0, 0)
            .slot);
}

Gauge
Registry::gauge(std::string_view name)
{
    std::lock_guard lock(mu_);
    const auto &info =
        lookupOrCreate(name, MetricInfo::Kind::Gauge, 0, 0, 0);
    return Gauge(&gauges_[info.slot]);
}

Histogram
Registry::histogram(std::string_view name, double lo, double hi,
                    std::size_t bins)
{
    if (!(hi > lo) || bins == 0)
        util::panic(util::cat("telemetry histogram '", name,
                              "' needs hi > lo and at least one "
                              "bin"));
    std::lock_guard lock(mu_);
    const auto &info = lookupOrCreate(
        name, MetricInfo::Kind::Histogram, lo, hi, bins);
    return Histogram(info.slot, lo, hi, bins);
}

void
Registry::registerState(detail::ThreadState *state)
{
    std::lock_guard lock(mu_);
    live_.push_back(state);
}

void
Registry::retireState(detail::ThreadState *state)
{
    std::unique_ptr<detail::ThreadState> owned(state);
    std::lock_guard lock(mu_);
    {
        std::lock_guard state_lock(state->mu);
        mergeLocked(*state);
    }
    std::erase(live_, state);
}

void
Registry::mergeLocked(const detail::ThreadState &state)
{
    for (std::size_t i = 0;
         i < state.counters.size() && i < counter_totals_.size(); ++i)
        counter_totals_[i] +=
            state.counters[i].load(std::memory_order_relaxed);

    for (std::size_t i = 0;
         i < state.hists.size() && i < hist_totals_.size(); ++i) {
        const auto *lh = state.hists[i].get();
        if (!lh)
            continue;
        HistTotals &t = hist_totals_[i];
        for (std::size_t b = 0; b < t.counts.size(); ++b)
            t.counts[b] += lh->hist.binCount(b);
        t.underflow += lh->hist.underflow();
        t.overflow += lh->hist.overflow();
        t.total += lh->hist.total();
        t.sum += lh->stat.sum();
        if (lh->stat.count()) {
            t.min = std::min(t.min, lh->stat.min());
            t.max = std::max(t.max, lh->stat.max());
        }
    }
}

std::uint64_t
Registry::Snapshot::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

Registry::Snapshot
Registry::snapshot() const
{
    std::lock_guard lock(mu_);

    // Start from the retired totals, then fold in every live thread.
    std::vector<std::uint64_t> counters = counter_totals_;
    std::vector<HistTotals> hists = hist_totals_;
    for (const detail::ThreadState *ts : live_) {
        std::lock_guard state_lock(
            const_cast<detail::ThreadState *>(ts)->mu);
        for (std::size_t i = 0;
             i < ts->counters.size() && i < counters.size(); ++i)
            counters[i] +=
                ts->counters[i].load(std::memory_order_relaxed);
        for (std::size_t i = 0;
             i < ts->hists.size() && i < hists.size(); ++i) {
            const auto *lh = ts->hists[i].get();
            if (!lh)
                continue;
            HistTotals &t = hists[i];
            for (std::size_t b = 0; b < t.counts.size(); ++b)
                t.counts[b] += lh->hist.binCount(b);
            t.underflow += lh->hist.underflow();
            t.overflow += lh->hist.overflow();
            t.total += lh->hist.total();
            t.sum += lh->stat.sum();
            if (lh->stat.count()) {
                t.min = std::min(t.min, lh->stat.min());
                t.max = std::max(t.max, lh->stat.max());
            }
        }
    }

    Snapshot snap;
    for (const MetricInfo &info : metrics_) {
        switch (info.kind) {
          case MetricInfo::Kind::Counter:
            snap.counters[info.name] = counters[info.slot];
            break;
          case MetricInfo::Kind::Gauge:
            snap.gauges[info.name] =
                gauges_[info.slot].load(std::memory_order_relaxed);
            break;
          case MetricInfo::Kind::Histogram: {
            const HistTotals &t = hists[info.slot];
            HistogramSnapshot hs;
            hs.lo = info.lo;
            hs.hi = info.hi;
            hs.counts = t.counts;
            hs.underflow = t.underflow;
            hs.overflow = t.overflow;
            hs.total = t.total;
            hs.sum = t.sum;
            hs.min = t.total ? t.min : 0.0;
            hs.max = t.total ? t.max : 0.0;
            snap.histograms[info.name] = std::move(hs);
            break;
          }
        }
    }
    return snap;
}

void
Registry::writeMetricsJson(std::ostream &os) const
{
    // Built as a document tree and serialized with util::writeJson
    // so the emitted file is guaranteed to round-trip through
    // util::parseJson (the validator and manifest checker both parse
    // it back).
    const Snapshot snap = snapshot();
    util::JsonValue root = util::JsonValue::makeObject();

    util::JsonValue counters = util::JsonValue::makeObject();
    for (const auto &[name, value] : snap.counters)
        counters.set(name, util::JsonValue::makeNumber(
                               static_cast<double>(value)));
    root.set("counters", std::move(counters));

    util::JsonValue gauges = util::JsonValue::makeObject();
    for (const auto &[name, value] : snap.gauges)
        gauges.set(name, util::JsonValue::makeNumber(value));
    root.set("gauges", std::move(gauges));

    util::JsonValue hists = util::JsonValue::makeObject();
    for (const auto &[name, h] : snap.histograms) {
        util::JsonValue entry = util::JsonValue::makeObject();
        entry.set("lo", util::JsonValue::makeNumber(h.lo));
        entry.set("hi", util::JsonValue::makeNumber(h.hi));
        util::JsonValue counts = util::JsonValue::makeArray();
        for (std::uint64_t c : h.counts)
            counts.push(util::JsonValue::makeNumber(
                static_cast<double>(c)));
        entry.set("counts", std::move(counts));
        entry.set("underflow", util::JsonValue::makeNumber(
                                   static_cast<double>(h.underflow)));
        entry.set("overflow", util::JsonValue::makeNumber(
                                  static_cast<double>(h.overflow)));
        entry.set("total", util::JsonValue::makeNumber(
                               static_cast<double>(h.total)));
        entry.set("sum", util::JsonValue::makeNumber(h.sum));
        entry.set("mean", util::JsonValue::makeNumber(h.mean()));
        entry.set("min", util::JsonValue::makeNumber(h.min));
        entry.set("max", util::JsonValue::makeNumber(h.max));
        hists.set(name, std::move(entry));
    }
    root.set("histograms", std::move(hists));

    util::writeJson(os, root);
    os << '\n';
}

void
Registry::setTracing(bool on)
{
    tracing_.store(on, std::memory_order_relaxed);
}

double
Registry::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
Registry::addSpan(Span span)
{
    std::lock_guard lock(trace_mu_);
    if (spans_.size() >= max_spans) {
        ++spans_dropped_;
        return;
    }
    spans_.push_back(std::move(span));
}

void
Registry::recordSpan(std::string_view name, std::string_view cat,
                     double ts_us, double dur_us,
                     std::vector<SpanArg> args)
{
    if (!tracing())
        return;
    Span s;
    s.name = std::string(name);
    s.cat = std::string(cat);
    s.tid = threadTraceId();
    s.ts_us = ts_us;
    s.dur_us = dur_us;
    s.args = std::move(args);
    addSpan(std::move(s));
}

void
Registry::recordInstant(std::string_view name, std::string_view cat,
                        std::vector<SpanArg> args)
{
    if (!tracing())
        return;
    Span s;
    s.name = std::string(name);
    s.cat = std::string(cat);
    s.tid = threadTraceId();
    s.ts_us = nowUs();
    s.instant = true;
    s.args = std::move(args);
    addSpan(std::move(s));
}

void
Registry::writeTraceJson(std::ostream &os) const
{
    std::lock_guard lock(trace_mu_);
    util::JsonWriter w(os);
    w.beginObject();
    w.key("traceEvents").beginArray();
    for (const Span &s : spans_) {
        w.beginObject();
        w.kv("name", std::string_view(s.name));
        w.kv("cat", std::string_view(s.cat.empty() ? "ramp" : s.cat));
        w.kv("ph", s.instant ? "i" : "X");
        w.kv("pid", std::int64_t{1});
        w.kv("tid", std::uint64_t{s.tid});
        w.kv("ts", s.ts_us);
        if (s.instant)
            w.kv("s", "t"); // thread-scoped instant
        else
            w.kv("dur", s.dur_us);
        if (!s.args.empty()) {
            w.key("args").beginObject();
            for (const auto &[k, v] : s.args)
                w.kv(k, v);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.kv("displayTimeUnit", "ms");
    if (spans_dropped_)
        w.kv("rampSpansDropped", std::uint64_t{spans_dropped_});
    w.endObject();
    os << '\n';
}

void
Registry::reset()
{
    std::lock_guard lock(mu_);
    std::fill(counter_totals_.begin(), counter_totals_.end(), 0);
    for (HistTotals &t : hist_totals_) {
        std::fill(t.counts.begin(), t.counts.end(), 0);
        t.underflow = t.overflow = t.total = 0;
        t.sum = 0.0;
        t.min = 1.0 / 0.0;
        t.max = -1.0 / 0.0;
    }
    for (auto &g : gauges_)
        g.store(0.0, std::memory_order_relaxed);
    for (detail::ThreadState *ts : live_) {
        std::lock_guard state_lock(ts->mu);
        for (auto &c : ts->counters)
            c.store(0, std::memory_order_relaxed);
        // Replace, never null: an owner's unlocked pre-check may have
        // already seen a live pointer for its locked add().
        for (auto &h : ts->hists)
            if (h) {
                const double lo = h->hist.binLo(0);
                const double hi = h->hist.binHi(h->hist.bins() - 1);
                h = std::make_unique<detail::LocalHist>(
                    lo, hi, h->hist.bins());
            }
    }
    std::lock_guard trace_lock(trace_mu_);
    spans_.clear();
    spans_dropped_ = 0;
}

ScopedTimer::ScopedTimer(Histogram hist, const char *span_name,
                         const char *category)
    : hist_(hist), name_(span_name), cat_(category),
      start_(std::chrono::steady_clock::now())
{
}

ScopedTimer::~ScopedTimer()
{
    const auto end = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(end - start_).count();
    hist_.add(seconds);
    if (name_ && Registry::instance().tracing()) {
        auto &r = Registry::instance();
        const double end_us = r.nowUs();
        r.recordSpan(name_, cat_, end_us - seconds * 1e6,
                     seconds * 1e6, std::move(args_));
    }
}

void
ScopedTimer::arg(std::string name, double value)
{
    args_.emplace_back(std::move(name), value);
}

Counter
counter(std::string_view name)
{
    return Registry::instance().counter(name);
}

Gauge
gauge(std::string_view name)
{
    return Registry::instance().gauge(name);
}

Histogram
histogram(std::string_view name, double lo, double hi,
          std::size_t bins)
{
    return Registry::instance().histogram(name, lo, hi, bins);
}

void
instant(std::string_view name, std::string_view cat,
        std::vector<SpanArg> args)
{
    Registry::instance().recordInstant(name, cat, std::move(args));
}

namespace {

std::mutex exit_mu;
std::string exit_metrics_path;
std::string exit_trace_path;

void
writeFilesNow()
{
    std::string metrics, trace;
    {
        std::lock_guard lock(exit_mu);
        metrics = exit_metrics_path;
        trace = exit_trace_path;
    }
    if (!metrics.empty()) {
        std::ofstream os(metrics, std::ios::trunc);
        if (os)
            Registry::instance().writeMetricsJson(os);
        else
            util::warn(util::cat("telemetry: cannot write metrics "
                                 "file ",
                                 metrics));
    }
    if (!trace.empty()) {
        std::ofstream os(trace, std::ios::trunc);
        if (os)
            Registry::instance().writeTraceJson(os);
        else
            util::warn(util::cat("telemetry: cannot write trace "
                                 "file ",
                                 trace));
    }
}

} // namespace

void
writeFilesAtExit(std::string metrics_path, std::string trace_path)
{
    static bool installed = [] {
        std::atexit(writeFilesNow);
        return true;
    }();
    (void)installed;
    if (!trace_path.empty())
        Registry::instance().setTracing(true);
    std::lock_guard lock(exit_mu);
    exit_metrics_path = std::move(metrics_path);
    exit_trace_path = std::move(trace_path);
}

int
consumeOutputFlags(int argc, char **argv)
{
    std::string metrics, trace;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        std::string *dest = nullptr;
        std::string_view inline_value;
        bool has_inline = false;
        if (arg == "--metrics" || arg == "--trace") {
            dest = arg == "--metrics" ? &metrics : &trace;
        } else if (arg.rfind("--metrics=", 0) == 0) {
            dest = &metrics;
            inline_value = arg.substr(10);
            has_inline = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            dest = &trace;
            inline_value = arg.substr(8);
            has_inline = true;
        }
        if (!dest) {
            argv[out++] = argv[i];
            continue;
        }
        if (has_inline) {
            *dest = std::string(inline_value);
        } else if (i + 1 < argc) {
            *dest = argv[++i];
        } else {
            util::fatal(util::cat(arg, " needs a file path"));
        }
        if (dest->empty())
            util::fatal(util::cat(arg, " needs a file path"));
    }
    argv[out] = nullptr;
    if (!metrics.empty() || !trace.empty())
        writeFilesAtExit(metrics, trace);
    return out;
}

} // namespace telemetry
} // namespace ramp
