/**
 * @file
 * Plain-text table and CSV rendering for benchmark and example output.
 *
 * Every reproduction bench prints its table/figure series through this
 * helper so all experiment output shares one format and can be diffed
 * across runs.
 */

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ramp {
namespace util {

/**
 * Column-aligned text table with an optional title, rendered to a
 * stream. Cells are strings; numeric helpers format with fixed
 * precision.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Optional title printed above the table. */
    void setTitle(std::string title);

    /** Append a full row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 3);

    /** Render aligned text to the stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (title omitted). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace util
} // namespace ramp

