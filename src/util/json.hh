/**
 * @file
 * Minimal streaming JSON writer for machine-readable experiment
 * output (plotting scripts, CI diffing) plus a small recursive-
 * descent parser used to validate emitted files (telemetry metrics
 * and trace-event output) in tests and tooling. The writer handles
 * nesting, commas, string escaping, and non-finite numbers (emitted
 * as null, since JSON has no NaN/Inf).
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ramp {
namespace util {

/** Streaming JSON writer over an ostream. */
class JsonWriter
{
  public:
    /** Write to the stream; the stream must outlive the writer. */
    explicit JsonWriter(std::ostream &os);

    /** Start the root (or a nested) object. */
    JsonWriter &beginObject();

    /** Close the innermost object. */
    JsonWriter &endObject();

    /** Start an array (as a value or root). */
    JsonWriter &beginArray();

    /** Close the innermost array. */
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(std::string_view name);

    /** Emit a string value. */
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);

    /** Emit a number (null when not finite). */
    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);

    /** Emit a boolean. */
    JsonWriter &value(bool v);

    /** Emit null. */
    JsonWriter &null();

    /** Shorthand: key + value. */
    template <typename T>
    JsonWriter &
    kv(std::string_view name, T v)
    {
        key(name);
        return value(v);
    }

    /** True once the root value is complete and balanced. */
    bool complete() const;

  private:
    void separator();
    void writeEscaped(std::string_view s);

    std::ostream &os_;
    /** Stack: 'O' in object (expecting key), 'V' in object
     *  (expecting value), 'A' in array. */
    std::vector<char> stack_;
    bool need_comma_ = false;
    bool root_done_ = false;
};

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Type {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /** Insertion-ordered; duplicate keys are kept as parsed. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** find() that dies (panic) when the key is missing. */
    const JsonValue &at(std::string_view key) const;

    // --- Construction helpers (building documents to serialize) ---

    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray();
    static JsonValue makeObject();

    /** Append an object member (no duplicate-key check) and return
     *  *this for chaining. Panics when this is not an object. */
    JsonValue &set(std::string key, JsonValue v);

    /** Append an array element; panics when this is not an array. */
    JsonValue &push(JsonValue v);
};

/**
 * Serialize a document tree. Exact round-trip with parseJson: string
 * escaping matches the parser's decoding, and numbers are printed
 * with the shortest representation that parses back to the same
 * double (integral values in range print without an exponent or
 * fraction). Non-finite numbers cannot be represented and are
 * emitted as null, as JsonWriter does.
 */
void writeJson(std::ostream &os, const JsonValue &value);

/** writeJson into a string (protocol messages, tests). */
std::string writeJson(const JsonValue &value);

/**
 * Parse a complete JSON document. Strict: one root value, no trailing
 * garbage, no comments, no trailing commas. \uXXXX escapes are
 * decoded to UTF-8 (surrogate pairs included).
 *
 * @param text The document.
 * @param error When non-null, receives a message with the byte
 *        offset on failure.
 * @return The root value, or nullopt on malformed input.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

} // namespace util
} // namespace ramp

