/**
 * @file
 * Minimal streaming JSON writer for machine-readable experiment
 * output (plotting scripts, CI diffing). Handles nesting, commas,
 * string escaping, and non-finite numbers (emitted as null, since
 * JSON has no NaN/Inf).
 */

#ifndef RAMP_UTIL_JSON_HH
#define RAMP_UTIL_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ramp {
namespace util {

/** Streaming JSON writer over an ostream. */
class JsonWriter
{
  public:
    /** Write to the stream; the stream must outlive the writer. */
    explicit JsonWriter(std::ostream &os);

    /** Start the root (or a nested) object. */
    JsonWriter &beginObject();

    /** Close the innermost object. */
    JsonWriter &endObject();

    /** Start an array (as a value or root). */
    JsonWriter &beginArray();

    /** Close the innermost array. */
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(std::string_view name);

    /** Emit a string value. */
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);

    /** Emit a number (null when not finite). */
    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);

    /** Emit a boolean. */
    JsonWriter &value(bool v);

    /** Emit null. */
    JsonWriter &null();

    /** Shorthand: key + value. */
    template <typename T>
    JsonWriter &
    kv(std::string_view name, T v)
    {
        key(name);
        return value(v);
    }

    /** True once the root value is complete and balanced. */
    bool complete() const;

  private:
    void separator();
    void writeEscaped(std::string_view s);

    std::ostream &os_;
    /** Stack: 'O' in object (expecting key), 'V' in object
     *  (expecting value), 'A' in array. */
    std::vector<char> stack_;
    bool need_comma_ = false;
    bool root_done_ = false;
};

} // namespace util
} // namespace ramp

#endif // RAMP_UTIL_JSON_HH
