#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace ramp {
namespace util {

namespace {

/** splitmix64: used only to expand the seed into the xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::below called with n == 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % n;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        panic(cat("Rng::geometric needs p in (0,1], got ", p));
    if (p == 1.0)
        return 1;
    // Inversion: ceil(ln(U) / ln(1-p)).
    const double u = 1.0 - uniform(); // in (0, 1]
    const double v = std::ceil(std::log(u) / std::log1p(-p));
    return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic(cat("Rng::exponential needs mean > 0, got ", mean));
    const double u = 1.0 - uniform(); // in (0, 1]
    return -mean * std::log(u);
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace util
} // namespace ramp
