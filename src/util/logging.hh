/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * fatal() is for user errors (bad configuration, impossible parameter
 * combinations) and exits with status 1. panic() is for internal
 * invariant violations (bugs in this library) and aborts. warn() and
 * inform() report conditions without stopping.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace ramp {
namespace util {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel {
    Silent = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** Set the global log threshold; messages above it are suppressed. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/** Report a message the user should see but not worry about. */
void inform(const std::string &msg);

/** Report a condition that may indicate a modelling problem. */
void warn(const std::string &msg);

/** Report a debug-level trace message. */
void debug(const std::string &msg);

/**
 * Terminate due to a user-caused error (invalid configuration or
 * arguments). Prints the message and exits with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminate due to an internal bug (an invariant that should never be
 * violated regardless of user input). Prints the message and aborts.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Build a message from stream-formattable pieces.
 * Example: fatal(cat("bad frequency ", f, " GHz")).
 */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (void)(os << ... << args);
    return os.str();
}

} // namespace util
} // namespace ramp

