#include "util/json.hh"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace ramp {
namespace util {

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

void
JsonWriter::separator()
{
    if (root_done_)
        panic("JsonWriter: writing past a complete root value");
    if (!stack_.empty() && stack_.back() == 'O')
        panic("JsonWriter: value emitted where a key is expected");
    if (need_comma_)
        os_ << ',';
}

void
JsonWriter::writeEscaped(std::string_view s)
{
    os_ << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os_ << "\\\"";
            break;
          case '\\':
            os_ << "\\\\";
            break;
          case '\n':
            os_ << "\\n";
            break;
          case '\t':
            os_ << "\\t";
            break;
          case '\r':
            os_ << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
    os_ << '"';
}

namespace {

/** After emitting a value, an enclosing object flips back to
 *  expecting a key; arrays stay arrays. */
void
afterValue(std::vector<char> &stack, bool &need_comma,
           bool &root_done)
{
    if (stack.empty()) {
        root_done = true;
    } else if (stack.back() == 'V') {
        stack.back() = 'O';
    }
    need_comma = true;
}

} // namespace

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    os_ << '{';
    stack_.push_back('O');
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != 'O')
        panic("JsonWriter: endObject outside an object");
    stack_.pop_back();
    os_ << '}';
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    os_ << '[';
    stack_.push_back('A');
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != 'A')
        panic("JsonWriter: endArray outside an array");
    stack_.pop_back();
    os_ << ']';
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (stack_.empty() || stack_.back() != 'O')
        panic("JsonWriter: key outside an object");
    if (need_comma_)
        os_ << ',';
    writeEscaped(name);
    os_ << ':';
    stack_.back() = 'V';
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separator();
    writeEscaped(v);
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    separator();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os_ << buf;
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separator();
    os_ << v;
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    os_ << v;
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    os_ << (v ? "true" : "false");
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separator();
    os_ << "null";
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

bool
JsonWriter::complete() const
{
    return root_done_ && stack_.empty();
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *v = find(key);
    if (!v)
        panic(cat("JsonValue: missing key '", std::string(key), "'"));
    return *v;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue out;
    out.type = Type::Bool;
    out.boolean = v;
    return out;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue out;
    out.type = Type::Number;
    out.number = v;
    return out;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue out;
    out.type = Type::String;
    out.str = std::move(v);
    return out;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue out;
    out.type = Type::Array;
    return out;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue out;
    out.type = Type::Object;
    return out;
}

JsonValue &
JsonValue::set(std::string key, JsonValue v)
{
    if (type != Type::Object)
        panic("JsonValue::set on a non-object");
    object.emplace_back(std::move(key), std::move(v));
    return *this;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (type != Type::Array)
        panic("JsonValue::push on a non-array");
    array.push_back(std::move(v));
    return *this;
}

namespace {

/** Shortest decimal form that parses back to exactly @p v. Integral
 *  values within the double-exact range print as plain integers so
 *  counters stay readable. */
void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        os << buf;
        return;
    }
    char buf[40];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), v,
                      std::chars_format::general);
    os.write(buf, res.ptr - buf);
}

void
writeEscapedString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
writeJson(std::ostream &os, const JsonValue &value)
{
    switch (value.type) {
      case JsonValue::Type::Null:
        os << "null";
        break;
      case JsonValue::Type::Bool:
        os << (value.boolean ? "true" : "false");
        break;
      case JsonValue::Type::Number:
        writeNumber(os, value.number);
        break;
      case JsonValue::Type::String:
        writeEscapedString(os, value.str);
        break;
      case JsonValue::Type::Array: {
        os << '[';
        bool first = true;
        for (const JsonValue &v : value.array) {
            if (!first)
                os << ',';
            first = false;
            writeJson(os, v);
        }
        os << ']';
        break;
      }
      case JsonValue::Type::Object: {
        os << '{';
        bool first = true;
        for (const auto &[k, v] : value.object) {
            if (!first)
                os << ',';
            first = false;
            writeEscapedString(os, k);
            os << ':';
            writeJson(os, v);
        }
        os << '}';
        break;
      }
    }
}

std::string
writeJson(const JsonValue &value)
{
    std::ostringstream os;
    writeJson(os, value);
    return os.str();
}

namespace {

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue>
    parseDocument()
    {
        JsonValue root;
        if (!parseValue(root, 0))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after the root value");
            return std::nullopt;
        }
        return root;
    }

  private:
    /** Deep enough for any machine output we emit; bounds the C++
     *  call stack against adversarial nesting. */
    static constexpr std::size_t max_depth = 128;

    bool
    fail(const std::string &msg)
    {
        if (error_ && error_->empty())
            *error_ = cat(msg, " at byte ", pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > max_depth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.str);
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true") || fail("bad literal");
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false") || fail("bad literal");
          case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null") || fail("bad literal");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out, std::size_t depth)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.object.emplace_back(std::move(key),
                                    std::move(value));
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out, std::size_t depth)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.array.push_back(std::move(value));
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']' in array");
        }
    }

    /** Append a code point as UTF-8. */
    static void
    appendUtf8(std::string &s, std::uint32_t cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseHex4(std::uint32_t &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        for (;;) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                std::uint32_t cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a \uXXXX low half must follow.
                    if (!literal("\\u"))
                        return fail("lone high surrogate");
                    std::uint32_t lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("lone low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        (void)consume('-');
        if (pos_ >= text_.size() ||
            !(text_[pos_] >= '0' && text_[pos_] <= '9'))
            return fail("expected a value");
        if (!consume('0'))
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        if (consume('.')) {
            if (pos_ >= text_.size() ||
                !(text_[pos_] >= '0' && text_[pos_] <= '9'))
                return fail("digits required after decimal point");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !(text_[pos_] >= '0' && text_[pos_] <= '9'))
                return fail("digits required in exponent");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        out.type = JsonValue::Type::Number;
        // The slice is a valid JSON number by construction, which is
        // also a valid strtod input.
        out.number = std::strtod(
            std::string(text_.substr(start, pos_ - start)).c_str(),
            nullptr);
        return true;
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    if (error)
        error->clear();
    Parser parser(text, error);
    return parser.parseDocument();
}

} // namespace util
} // namespace ramp
