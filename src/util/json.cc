#include "util/json.hh"

#include <cmath>
#include <ostream>

#include "util/logging.hh"

namespace ramp {
namespace util {

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

void
JsonWriter::separator()
{
    if (root_done_)
        panic("JsonWriter: writing past a complete root value");
    if (!stack_.empty() && stack_.back() == 'O')
        panic("JsonWriter: value emitted where a key is expected");
    if (need_comma_)
        os_ << ',';
}

void
JsonWriter::writeEscaped(std::string_view s)
{
    os_ << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os_ << "\\\"";
            break;
          case '\\':
            os_ << "\\\\";
            break;
          case '\n':
            os_ << "\\n";
            break;
          case '\t':
            os_ << "\\t";
            break;
          case '\r':
            os_ << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
    os_ << '"';
}

namespace {

/** After emitting a value, an enclosing object flips back to
 *  expecting a key; arrays stay arrays. */
void
afterValue(std::vector<char> &stack, bool &need_comma,
           bool &root_done)
{
    if (stack.empty()) {
        root_done = true;
    } else if (stack.back() == 'V') {
        stack.back() = 'O';
    }
    need_comma = true;
}

} // namespace

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    os_ << '{';
    stack_.push_back('O');
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != 'O')
        panic("JsonWriter: endObject outside an object");
    stack_.pop_back();
    os_ << '}';
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    os_ << '[';
    stack_.push_back('A');
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != 'A')
        panic("JsonWriter: endArray outside an array");
    stack_.pop_back();
    os_ << ']';
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (stack_.empty() || stack_.back() != 'O')
        panic("JsonWriter: key outside an object");
    if (need_comma_)
        os_ << ',';
    writeEscaped(name);
    os_ << ':';
    stack_.back() = 'V';
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separator();
    writeEscaped(v);
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    separator();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os_ << buf;
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separator();
    os_ << v;
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    os_ << v;
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    os_ << (v ? "true" : "false");
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separator();
    os_ << "null";
    afterValue(stack_, need_comma_, root_done_);
    return *this;
}

bool
JsonWriter::complete() const
{
    return root_done_ && stack_.empty();
}

} // namespace util
} // namespace ramp
