/**
 * @file
 * Minimal POSIX TCP plumbing for the serving layer (src/serve): RAII
 * sockets, loopback listeners, deadline-bounded exact reads/writes,
 * and the length-prefixed frame codec the evaluation service speaks.
 *
 * Everything here returns Result rather than throwing: a peer that
 * vanishes, stalls, or sends garbage is a *per-connection* failure,
 * never a process-level one. Deadlines are enforced with poll(), so a
 * slow or half-open peer costs a bounded wait, not a hung thread.
 *
 * Frame format: a 4-byte big-endian payload length followed by that
 * many payload bytes (JSON in the serve protocol, but the codec is
 * content-agnostic). The length is bounded by the caller's
 * max_payload; an oversized or absurd length is reported as
 * InvalidInput *before* any payload is read, so one malformed client
 * cannot make the server buffer unbounded memory.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/error.hh"

namespace ramp {
namespace util {

/** Owning file-descriptor wrapper (close on destruction). */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }

    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent). */
    void close();

    /** Half-close the write side (sends FIN; reads keep working). */
    void shutdownWrite();

    /** Shut down both directions without closing the fd: unblocks a
     *  peer thread parked in poll()/recv() on this socket. */
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/** A bound, listening socket plus the port it landed on. */
struct Listener
{
    Socket socket;
    std::uint16_t port = 0;
};

/**
 * Bind and listen on 127.0.0.1:@p port (0 = kernel-assigned
 * ephemeral port, reported back in Listener::port). Loopback only:
 * the evaluation service is an internal daemon, not an internet
 * endpoint.
 */
[[nodiscard]] Result<Listener> listenTcp(std::uint16_t port, int backlog = 64);

/**
 * Accept one connection, waiting at most @p timeout_ms (< 0 waits
 * forever). Timeout when nothing arrived; IoFailure when the listener
 * broke (e.g. closed during drain).
 */
[[nodiscard]] Result<Socket> acceptTcp(const Socket &listener, int timeout_ms);

/** Connect to 127.0.0.1:@p port within @p timeout_ms. */
[[nodiscard]] Result<Socket> connectTcp(std::uint16_t port, int timeout_ms);

/**
 * Read exactly @p n bytes within @p timeout_ms (deadline for the
 * whole read, < 0 waits forever). A clean EOF *before the first
 * byte* returns nullopt (the peer finished); EOF mid-buffer is
 * IoFailure (a torn frame), and an expired deadline is Timeout.
 *
 * A socket-level receive timeout (SO_RCVTIMEO) also surfaces as
 * Timeout -- never as a silent retry, which would spin past the
 * caller's deadline on a stalled peer. With @p timeout_ms < 0 the
 * read is not poll()-gated, so a configured SO_RCVTIMEO still
 * bounds the wait.
 */
[[nodiscard]] Result<std::optional<std::string>>
readExact(const Socket &sock, std::size_t n, int timeout_ms);

/** Write all of @p data within @p timeout_ms. Timeout semantics as
 *  readExact (SO_SNDTIMEO surfaces as Timeout, never a retry). */
[[nodiscard]] Result<void> writeAll(const Socket &sock, std::string_view data,
                      int timeout_ms);

/**
 * Read one length-prefixed frame. nullopt on clean EOF at a frame
 * boundary; InvalidInput when the prefix exceeds @p max_payload
 * (garbage bytes ahead of a frame land here too -- they misparse as
 * an absurd length); Timeout/IoFailure as readExact. @p timeout_ms
 * is one deadline for the *whole* frame -- prefix and payload share
 * it, so a peer that dies after a partial frame surfaces as a
 * structured error within a single timeout, never two.
 */
[[nodiscard]] Result<std::optional<std::string>>
readFrame(const Socket &sock, std::size_t max_payload,
          int timeout_ms);

/** Write one length-prefixed frame. InvalidInput when @p payload
 *  exceeds @p max_payload. */
[[nodiscard]] Result<void> writeFrame(const Socket &sock, std::string_view payload,
                        std::size_t max_payload, int timeout_ms);

} // namespace util
} // namespace ramp
