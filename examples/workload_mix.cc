/**
 * @file
 * Scenario: qualifying for a workload mix (paper Section 3.6: "To
 * determine the FIT value for a workload, we can use a weighted
 * average of the FIT values of the constituent applications").
 *
 * A commodity desktop does not run MP3dec flat out forever; it runs a
 * blend. This example shows that a part whose *mix* FIT meets the
 * target can be qualified cheaper than per-application worst-case
 * reasoning would allow: individual hot apps may exceed the target as
 * long as the time-weighted average stays inside it.
 *
 * Usage: workload_mix [T_qual_K]   (default 360)
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/evaluator.hh"
#include "drm/eval_cache.hh"
#include "drm/oracle.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"
#include "util/telemetry.hh"

int
main(int argc, char **argv)
{
    argc = ramp::telemetry::consumeOutputFlags(argc, argv);
    using namespace ramp;

    const double t_qual = argc > 1 ? std::strtod(argv[1], nullptr)
                                   : 360.0;

    drm::EvaluationCache cache("ramp_eval_cache.txt");
    util::ThreadPool pool; // RAMP_THREADS overrides the default
    const drm::OracleExplorer explorer(core::EvalParams{}, &cache,
                                       &pool);

    // A desktop-flavoured mix: mostly light integer work, bursts of
    // media decoding.
    struct Slot
    {
        const char *app;
        double weight; // time share
    };
    const Slot mix[] = {{"gzip", 0.35}, {"twolf", 0.25},
                        {"MP3dec", 0.20}, {"equake", 0.10},
                        {"MPGdec", 0.10}};

    std::vector<core::OperatingPoint> base_ops;
    for (const auto &app : workload::standardApps())
        base_ops.push_back(explorer.evaluateBase(app));
    core::QualificationSpec spec;
    spec.t_qual_k = t_qual;
    spec.alpha_qual = drm::alphaQualFromBaseline(base_ops);
    const core::Qualification qual(spec);

    util::Table t({"app", "time share", "FIT", "meets 4000?"});
    t.setTitle("Workload-mix qualification at T_qual = " +
               util::Table::num(t_qual, 0) + " K");

    std::vector<core::FitReport> reports;
    std::vector<double> weights;
    for (const auto &slot : mix) {
        const auto &op = base_ops[static_cast<std::size_t>(
            &workload::findApp(slot.app) -
            workload::standardApps().data())];
        const auto report = core::steadyFit(
            qual, power::poweredFractions(op.config), op.temps_k,
            op.activity.activity, op.config.voltage_v,
            op.config.frequency_ghz);
        reports.push_back(report);
        weights.push_back(slot.weight);
        t.addRow({slot.app, util::Table::num(slot.weight, 2),
                  util::Table::num(report.totalFit(), 0),
                  report.totalFit() <= 4000.0 ? "yes" : "no"});
    }

    const auto mixed = core::combineReports(reports, weights);
    t.addRow({"== mix ==", "1.00",
              util::Table::num(mixed.totalFit(), 0),
              mixed.totalFit() <= 4000.0 ? "yes" : "no"});
    t.print(std::cout);

    std::printf("\nmix MTTF: %.1f years (target ~30)\n",
                mixed.mttfYears());
    std::printf("hot applications can exceed the target as long as "
                "the time-weighted mix meets it --\nreliability is a "
                "budget over time (Section 4).\n");
    return 0;
}
