/**
 * @file
 * Trace capture and replay demonstration: the bring-your-own-trace
 * path. Captures a synthetic stream to a binary trace file, replays
 * it through the full evaluation stack, and emits the operating
 * point and FIT report as JSON.
 *
 * Usage: trace_tools [app] [uops] [path]
 *        (defaults: bzip2 1200000 /tmp/ramp_demo.trace)
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/report_json.hh"
#include "sim/core.hh"
#include "workload/trace_file.hh"
#include "workload/trace_gen.hh"
#include "util/telemetry.hh"

int
main(int argc, char **argv)
{
    argc = ramp::telemetry::consumeOutputFlags(argc, argv);
    using namespace ramp;

    const std::string app_name = argc > 1 ? argv[1] : "bzip2";
    const std::uint64_t uops =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'200'000;
    const std::string path =
        argc > 3 ? argv[3] : "/tmp/ramp_demo.trace";

    // 1. Capture: any UopSource works; here the synthetic generator.
    {
        workload::TraceGenerator gen(workload::findApp(app_name), 1);
        const auto n = workload::captureTrace(gen, path, uops);
        std::fprintf(stderr, "captured %llu uops to %s\n",
                     static_cast<unsigned long long>(n),
                     path.c_str());
    }

    // 2. Replay through the core, then power/thermal/RAMP.
    workload::FileTraceSource replay(path);
    sim::Core core(sim::baseMachine(), replay);
    core.runUops(uops / 2); // warm
    core.takeInterval();
    core.resetStats();
    core.runUops(uops / 2);
    const auto activity = core.takeInterval();

    const core::Evaluator evaluator;
    const auto op = evaluator.convergeThermal(sim::baseMachine(),
                                              activity, core.stats());

    core::QualificationSpec spec;
    spec.t_qual_k = 370.0;
    spec.alpha_qual = op.activity.activity;
    const core::Qualification qual(spec);
    sim::PerStructure<double> on;
    on.fill(1.0);
    const auto report = core::steadyFit(
        qual, on, op.temps_k, op.activity.activity, 1.0, 4.0);

    // 3. Machine-readable output.
    core::writeJson(std::cout, op);
    core::writeJson(std::cout, report);
    return 0;
}
