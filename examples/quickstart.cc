/**
 * @file
 * Quickstart: the five-minute tour of the RAMP library.
 *
 * 1. Pick an application profile and the base (Table 1) machine.
 * 2. Run the timing/power/thermal evaluation to get an operating
 *    point (IPC, per-structure activity, temperatures, power).
 * 3. Qualify the processor for 4000 FIT (~30-year MTTF) at a chosen
 *    qualification temperature.
 * 4. Ask RAMP for the application's FIT and MTTF on that processor.
 * 5. Let the DRM oracle pick the best DVS point that holds the
 *    reliability target.
 *
 * Usage: quickstart [app] [T_qual_K]   (defaults: MP3dec 370)
 */

#include <cstdio>
#include <cstdlib>

#include "core/evaluator.hh"
#include "drm/eval_cache.hh"
#include "drm/oracle.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"
#include "util/telemetry.hh"

int
main(int argc, char **argv)
{
    argc = ramp::telemetry::consumeOutputFlags(argc, argv);
    using namespace ramp;

    const std::string app_name = argc > 1 ? argv[1] : "MP3dec";
    const double t_qual = argc > 2 ? std::strtod(argv[2], nullptr)
                                   : 370.0;

    // --- 1. Application + machine ------------------------------------
    const workload::AppProfile &app = workload::findApp(app_name);
    const sim::MachineConfig machine = sim::baseMachine();
    std::printf("application: %s (%s), machine: %s\n",
                app.name.c_str(),
                workload::appClassName(app.app_class),
                machine.describe().c_str());

    // --- 2. Operating point ------------------------------------------
    const core::Evaluator evaluator;
    const core::OperatingPoint op = evaluator.evaluate(machine, app);
    std::printf("IPC %.2f | power %.1f W (%.1f dynamic + %.1f "
                "leakage) | hottest block %.1f K\n",
                op.ipc(), op.totalPower(), op.power.totalDynamic(),
                op.power.totalLeakage(), op.maxTemp());

    // --- 3. Qualification ---------------------------------------------
    core::QualificationSpec spec;
    spec.t_qual_k = t_qual; // the cost knob (Section 3.7)
    spec.alpha_qual = op.activity.activity;
    const core::Qualification qual(spec);
    std::printf("qualified for %.0f FIT at T_qual = %.0f K\n",
                spec.target_fit, spec.t_qual_k);

    // --- 4. Application FIT / MTTF -------------------------------------
    const core::FitReport report = core::steadyFit(
        qual, power::poweredFractions(machine), op.temps_k,
        op.activity.activity, machine.voltage_v,
        machine.frequency_ghz);
    std::printf("application FIT %.0f (MTTF %.1f years) -- %s the "
                "4000 FIT target\n",
                report.totalFit(), report.mttfYears(),
                report.totalFit() <= 4000.0 ? "meets" : "exceeds");
    for (auto m : core::allMechanisms())
        std::printf("  %-4s %7.0f FIT\n",
                    std::string(core::mechanismName(m)).c_str(),
                    report.mechanismFit(m));

    // --- 5. DRM oracle over the DVS ladder ------------------------------
    // Share the benches' persistent timing cache when present.
    drm::EvaluationCache cache("ramp_eval_cache.txt");
    // Fan the ladder out across the machine (RAMP_THREADS overrides).
    util::ThreadPool pool;
    const drm::OracleExplorer explorer(core::EvalParams{}, &cache,
                                       &pool);
    const auto explored =
        explorer.explore(app, drm::AdaptationSpace::Dvs);
    const auto sel = drm::selectDrm(explored, qual);
    const auto &chosen = explored.points[sel.index].op.config;
    std::printf("DRM picks %.2f GHz / %.3f V: performance %.3fx of "
                "base at %.0f FIT%s\n",
                chosen.frequency_ghz, chosen.voltage_v, sel.perf_rel,
                sel.fit,
                sel.feasible ? "" : " (target unreachable via DVS)");
    return 0;
}
