/**
 * @file
 * Bottleneck sensitivity analysis.
 *
 * For each application, re-evaluates the base machine with one
 * limiter idealised at a time -- perfect branch prediction, an
 * L1-resident working set, no register dependences -- and prints the
 * IPC each idealisation unlocks. Useful both for understanding the
 * synthetic workloads and for sanity-checking the core model.
 *
 * Usage: sensitivity [app ...]   (default: all apps)
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/evaluator.hh"
#include "sim/machine.hh"
#include "util/table.hh"
#include "workload/profile.hh"
#include "util/telemetry.hh"

namespace {

using namespace ramp;

workload::AppProfile
perfectBranches(workload::AppProfile p)
{
    p.branch.easy_frac = 1.0;
    p.branch.easy_bias = 1.0;
    for (auto &ph : p.phases)
        ph.mix.call = 0.0;
    return p;
}

workload::AppProfile
perfectMemory(workload::AppProfile p)
{
    for (auto &ph : p.phases) {
        ph.mem.working_set_bytes = 16 * 1024;
        ph.mem.hot_bytes = 16 * 1024;
        ph.mem.hot_frac = 1.0;
        ph.mem.random_frac = 0.0;
    }
    return p;
}

workload::AppProfile
noDependences(workload::AppProfile p)
{
    p.dep.p_src1 = 0.0;
    p.dep.p_src2 = 0.0;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    argc = ramp::telemetry::consumeOutputFlags(argc, argv);
    const core::Evaluator evaluator;
    const sim::MachineConfig base = sim::baseMachine();

    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.emplace_back(argv[i]);
    if (names.empty())
        for (const auto &app : workload::standardApps())
            names.push_back(app.name);

    util::Table table({"app", "base IPC", "perfect-bpred",
                       "perfect-mem", "no-deps", "all-three"});
    table.setTitle("IPC with one limiter idealised at a time");

    for (const auto &name : names) {
        const auto &app = workload::findApp(name);
        auto ipc = [&](const workload::AppProfile &p) {
            return evaluator.evaluate(base, p).ipc();
        };
        table.addRow({
            name,
            util::Table::num(ipc(app), 2),
            util::Table::num(ipc(perfectBranches(app)), 2),
            util::Table::num(ipc(perfectMemory(app)), 2),
            util::Table::num(ipc(noDependences(app)), 2),
            util::Table::num(
                ipc(perfectBranches(perfectMemory(noDependences(app)))),
                2),
        });
    }
    table.print(std::cout);
    return 0;
}
