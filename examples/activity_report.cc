/**
 * @file
 * Per-structure activity-factor report on the base machine.
 *
 * Prints the alpha values the power and electromigration models
 * consume, per application and structure -- the raw material for
 * power-model calibration and for choosing alpha_qual (Section 3.7).
 *
 * Usage: activity_report [app ...]   (default: all apps)
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/evaluator.hh"
#include "sim/machine.hh"
#include "util/table.hh"
#include "workload/profile.hh"
#include "util/telemetry.hh"

int
main(int argc, char **argv)
{
    argc = ramp::telemetry::consumeOutputFlags(argc, argv);
    using namespace ramp;

    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.emplace_back(argv[i]);
    if (names.empty())
        for (const auto &app : workload::standardApps())
            names.push_back(app.name);

    const core::Evaluator evaluator;
    const sim::MachineConfig base = sim::baseMachine();

    std::vector<std::string> headers{"app"};
    for (auto id : sim::allStructures())
        headers.emplace_back(sim::structureName(id));
    util::Table table(std::move(headers));
    table.setTitle("Activity factors (alpha) on the base machine");

    for (const auto &name : names) {
        const auto op =
            evaluator.evaluate(base, workload::findApp(name));
        std::vector<std::string> row{name};
        for (double a : op.activity.activity)
            row.push_back(util::Table::num(a, 3));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
