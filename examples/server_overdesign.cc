/**
 * @file
 * Scenario: the over-designed server processor (paper Section 1.3).
 *
 * High-end server parts are qualified for worst-case conditions and
 * carry expensive cooling, so most workloads leave reliability
 * margin on the table. This example quantifies that margin for each
 * application on a worst-case-qualified part (T_qual = 400 K, the
 * hottest temperature any workload reaches) and shows how much extra
 * performance DRM extracts by spending it -- the paper's
 * "over-designed processor" DRM use case.
 */

#include <cstdio>
#include <iostream>

#include "core/evaluator.hh"
#include "drm/eval_cache.hh"
#include "drm/oracle.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"
#include "util/telemetry.hh"

int
main(int argc, char **argv)
{
    argc = ramp::telemetry::consumeOutputFlags(argc, argv);
    using namespace ramp;

    // Share the benches' persistent timing cache when present.
    drm::EvaluationCache cache("ramp_eval_cache.txt");
    util::ThreadPool pool; // RAMP_THREADS overrides the default
    const drm::OracleExplorer explorer(core::EvalParams{}, &cache,
                                       &pool);

    // alpha_qual needs the whole suite's base behaviour first.
    std::vector<core::OperatingPoint> base_ops;
    for (const auto &app : workload::standardApps())
        base_ops.push_back(explorer.evaluateBase(app));

    core::QualificationSpec spec;
    spec.t_qual_k = 400.0; // worst case observed on chip
    spec.alpha_qual = drm::alphaQualFromBaseline(base_ops);
    const core::Qualification qual(spec);

    util::Table t({"app", "base FIT", "margin", "DRM f (GHz)",
                   "DRM perf", "DRM FIT"});
    t.setTitle("Worst-case-qualified server part (T_qual = 400 K): "
               "reliability margin -> performance");

    double total_gain = 0.0;
    for (std::size_t i = 0; i < workload::standardApps().size();
         ++i) {
        const auto &app = workload::standardApps()[i];
        const double base_fit =
            drm::operatingPointFit(qual, base_ops[i]);

        const auto explored =
            explorer.explore(app, drm::AdaptationSpace::Dvs);
        const auto sel = drm::selectDrm(explored, qual);
        const auto &cfg = explored.points[sel.index].op.config;

        t.addRow({app.name, util::Table::num(base_fit, 0),
                  util::Table::num(100.0 * (1.0 - base_fit / 4000.0),
                                   0) + "%",
                  util::Table::num(cfg.frequency_ghz, 2),
                  util::Table::num(sel.perf_rel, 3),
                  util::Table::num(sel.fit, 0)});
        total_gain += sel.perf_rel;
    }
    t.print(std::cout);
    std::printf("\nmean DRM speedup across the suite: %.3fx\n",
                total_gain / 9.0);
    std::printf("every application runs below the 4000 FIT target on "
                "the base machine;\nDRM converts that margin into "
                "clock frequency until the budget is spent.\n");
    return 0;
}
