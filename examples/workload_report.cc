/**
 * @file
 * Workload characterisation report.
 *
 * Runs every standard application on the base (Table 1) machine and
 * prints IPC, branch/cache behaviour, power, and temperatures next to
 * the paper's Table 2 reference values. This is both a user-facing
 * diagnostic and the tool used to calibrate the synthetic profiles.
 *
 * Usage: workload_report [measure_uops]
 */

#include <cstdlib>
#include <iostream>

#include "core/evaluator.hh"
#include "sim/machine.hh"
#include "util/table.hh"
#include "workload/profile.hh"
#include "util/telemetry.hh"

int
main(int argc, char **argv)
{
    argc = ramp::telemetry::consumeOutputFlags(argc, argv);
    using namespace ramp;

    core::EvalParams params;
    if (argc > 1)
        params.measure_uops = std::strtoull(argv[1], nullptr, 10);

    const core::Evaluator evaluator(params);
    const sim::MachineConfig base = sim::baseMachine();

    util::Table table({"app", "class", "IPC", "IPC(T2)", "mispred%",
                       "L1D miss%", "L2 miss%", "dyn W", "leak W",
                       "P(W)", "P(T2)", "Tmax K", "Tavg K"});
    table.setTitle("Base-machine workload characterisation "
                   "(reference: paper Table 2)");

    for (const auto &app : workload::standardApps()) {
        const auto op = evaluator.evaluate(base, app);
        const auto &st = op.stats;
        table.addRow({
            app.name,
            workload::appClassName(app.app_class),
            util::Table::num(op.ipc(), 2),
            util::Table::num(app.table2_ipc, 1),
            util::Table::num(100.0 * st.mispredictRate(), 1),
            util::Table::num(100.0 * op.l1d_miss_ratio, 1),
            util::Table::num(100.0 * op.l2_miss_ratio, 1),
            util::Table::num(op.power.totalDynamic(), 1),
            util::Table::num(op.power.totalLeakage(), 1),
            util::Table::num(op.totalPower(), 1),
            util::Table::num(app.table2_power_w, 1),
            util::Table::num(op.maxTemp(), 1),
            util::Table::num(op.avgTemp(), 1),
        });
    }
    table.print(std::cout);
    return 0;
}
