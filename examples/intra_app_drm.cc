/**
 * @file
 * Scenario: intra-application DRM (paper Sections 5 and 8).
 *
 * The paper's oracle adapts once per run; its Section 8 future work
 * asks for intra-application control. This example compares, for the
 * phased multimedia codecs, the best single DVS rung (the paper's
 * oracle) against a per-phase rung assignment with the same lifetime
 * FIT budget.
 *
 * Usage: intra_app_drm [T_qual_K]   (default 355)
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "drm/intra_app.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/telemetry.hh"

int
main(int argc, char **argv)
{
    argc = ramp::telemetry::consumeOutputFlags(argc, argv);
    using namespace ramp;

    const double t_qual = argc > 1 ? std::strtod(argv[1], nullptr)
                                   : 355.0;

    core::QualificationSpec spec;
    spec.t_qual_k = t_qual;
    spec.alpha_qual.fill(0.6);
    const core::Qualification qual(spec);

    drm::EvaluationCache cache("ramp_eval_cache.txt");
    util::ThreadPool pool; // RAMP_THREADS overrides the default
    const drm::IntraAppExplorer explorer(core::EvalParams{}, &cache,
                                         &pool);

    util::Table t({"app", "per-app rung (GHz)", "per-app perf",
                   "per-phase rungs (GHz)", "per-phase perf", "gain",
                   "FIT"});
    t.setTitle("Intra-application DRM at T_qual = " +
               util::Table::num(t_qual, 0) + " K (target 4000 FIT)");

    const auto &ladder = drm::dvsLevels();
    for (const char *name : {"MPGdec", "MP3dec", "H263enc"}) {
        const auto res =
            explorer.explore(workload::findApp(name), qual);

        std::string rungs;
        for (std::size_t i = 0; i < res.rung_per_phase.size(); ++i) {
            if (i)
                rungs += "/";
            rungs += util::Table::num(
                ladder[res.rung_per_phase[i]].frequency_ghz, 2);
        }
        t.addRow({name,
                  util::Table::num(
                      ladder[res.per_app.index].frequency_ghz, 2),
                  util::Table::num(res.per_app.perf_rel, 3), rungs,
                  util::Table::num(res.perf_rel, 3),
                  util::Table::num(100.0 * (res.gainOverPerApp() - 1.0),
                                   1) + "%",
                  util::Table::num(res.fit, 0) +
                      (res.feasible ? "" : "*")});
    }
    t.print(std::cout);
    std::printf("\nper-phase control spends the FIT budget where it "
                "buys the most instructions:\nthe cool phase runs "
                "faster, the hot phase pays the reliability bill.\n");
    return 0;
}
