/**
 * @file
 * Scenario: closed-loop DRM versus DTM on a live machine (the
 * control-algorithm future work of paper Section 8).
 *
 * Runs MP3dec on an under-designed part (T_qual = 360 K) three ways:
 * pinned at the base operating point, under the reactive DTM
 * controller, and under the budget-based DRM controller. Prints the
 * level trace and the end-of-run report: DRM converges onto the FIT
 * target; DTM holds its temperature cap but is oblivious to the
 * reliability budget.
 *
 * Usage: drm_controller [app] [T_qual_K]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "drm/transient.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

int
main(int argc, char **argv)
{
    argc = ramp::telemetry::consumeOutputFlags(argc, argv);
    using namespace ramp;

    const std::string app_name = argc > 1 ? argv[1] : "MP3dec";
    const double t_qual = argc > 2 ? std::strtod(argv[2], nullptr)
                                   : 360.0;

    const auto &app = workload::findApp(app_name);

    // Qualification of the under-designed part. alpha_qual from the
    // app itself keeps the example self-contained.
    drm::TransientParams params;
    core::QualificationSpec spec;
    spec.t_qual_k = t_qual;
    spec.alpha_qual.fill(0.5);
    const core::Qualification qual(spec);
    params.dtm.t_design_k = t_qual;

    const drm::TransientRunner runner(params);

    util::Table t({"policy", "avg FIT", "max T (K)", "perf vs base",
                   "level changes", "T>limit intervals"});
    t.setTitle("Closed-loop run: " + app.name + ", T_qual/T_design = " +
               util::Table::num(t_qual, 0) + " K, target 4000 FIT");

    // Performance is reported relative to the pinned run.
    const auto pinned = runner.run(app, qual, drm::Policy::None);
    const double base_perf = pinned.avg_uops_per_second;

    struct Row
    {
        const char *name;
        drm::Policy policy;
    };
    for (const Row row : {Row{"pinned @ base", drm::Policy::None},
                          Row{"DTM", drm::Policy::Dtm},
                          Row{"DRM", drm::Policy::Drm}}) {
        const auto res = runner.run(app, qual, row.policy);
        t.addRow({row.name, util::Table::num(res.final_avg_fit, 0),
                  util::Table::num(res.max_temp_seen_k, 1),
                  util::Table::num(res.avg_uops_per_second / base_perf,
                                   3),
                  std::to_string(res.level_transitions),
                  std::to_string(res.thermalViolations(t_qual))});

        if (row.policy == drm::Policy::Drm) {
            std::printf("DRM level trace (interval: frequency "
                        "GHz):\n");
            for (std::size_t i = 0; i < res.trace.size();
                 i += res.trace.size() / 12) {
                std::printf("  %3zu: %.2f GHz, avg FIT %.0f, "
                            "Tmax %.1f K\n",
                            i, res.trace[i].frequency_ghz,
                            res.trace[i].avg_fit,
                            res.trace[i].max_temp_k);
            }
        }
    }
    t.print(std::cout);
    std::printf("\nDRM steers the lifetime-average FIT onto the "
                "target; DTM caps temperature but can leave the "
                "budget blown or unspent.\n");
    return 0;
}
