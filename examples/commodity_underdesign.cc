/**
 * @file
 * Scenario: the under-designed commodity processor (paper Section
 * 1.3 / 7.1).
 *
 * A commodity part saves qualification and cooling cost by being
 * qualified below worst case; DRM throttles the rare workloads that
 * would exceed the target. This example sweeps the qualification
 * temperature (the cost proxy) and prints, for each point, how many
 * applications need throttling and what the worst and mean slowdowns
 * are -- the designer's cost-performance menu from Section 7.1.
 */

#include <cstdio>
#include <iostream>

#include "core/evaluator.hh"
#include "drm/eval_cache.hh"
#include "drm/oracle.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "workload/profile.hh"
#include "util/telemetry.hh"

int
main(int argc, char **argv)
{
    argc = ramp::telemetry::consumeOutputFlags(argc, argv);
    using namespace ramp;

    // Share the benches' persistent timing cache when present.
    drm::EvaluationCache cache("ramp_eval_cache.txt");
    util::ThreadPool pool; // RAMP_THREADS overrides the default
    const drm::OracleExplorer explorer(core::EvalParams{}, &cache,
                                       &pool);

    std::vector<core::OperatingPoint> base_ops;
    std::vector<drm::ExploredApp> explored;
    for (const auto &app : workload::standardApps()) {
        explored.push_back(
            explorer.explore(app, drm::AdaptationSpace::ArchDvs));
        base_ops.push_back(explored.back().base);
    }
    const auto alpha = drm::alphaQualFromBaseline(base_ops);

    util::Table t({"T_qual K", "apps throttled", "worst perf",
                   "worst app", "mean perf"});
    t.setTitle("Commodity under-design menu (ArchDVS DRM, "
               "4000 FIT target)");

    for (double tq : {400.0, 385.0, 370.0, 355.0, 345.0, 335.0,
                      325.0}) {
        core::QualificationSpec spec;
        spec.t_qual_k = tq;
        spec.alpha_qual = alpha;
        const core::Qualification qual(spec);

        int throttled = 0;
        double worst = 1e9, mean = 0.0;
        std::string worst_app;
        for (std::size_t i = 0; i < explored.size(); ++i) {
            const auto sel = drm::selectDrm(explored[i], qual);
            throttled += sel.perf_rel < 1.0 - 1e-9;
            mean += sel.perf_rel;
            if (sel.perf_rel < worst) {
                worst = sel.perf_rel;
                worst_app = explored[i].app_name;
            }
        }
        t.addRow({util::Table::num(tq, 0), std::to_string(throttled),
                  util::Table::num(worst, 3), worst_app,
                  util::Table::num(mean / 9.0, 3)});
    }
    t.print(std::cout);
    std::printf("\nreading the menu: every row is a cheaper part "
                "than the one above it;\nDRM guarantees the 4000 FIT "
                "target on all of them, trading only performance.\n");
    return 0;
}
